"""Per-processor execution of compiled doall loops.

``execute_doall(ctx, loop)`` is a generator of machine ops implementing
one rank's share of the loop:

1. replay the send half of each read array's frozen gather
   :class:`~repro.compiler.commsched.TransferSchedule` (payload
   snapshotted -> the receiver observes pre-loop values: copy-in) and
   perform its local move into the workspace;
2. replay the receive half: ghost regions land in the workspace through
   the schedule's precomputed scatter positions;
3. evaluate all statement right-hand sides vectorized over the local
   iteration box (one Compute op charges the flop count);
4. replay each statement's frozen scatter TransferSchedule: local
   stores and outgoing remote-write messages read the flat value vector
   through precomputed selection arrays, incoming messages (values
   only, no index lists on the wire) land through precomputed
   local-block coordinates.

With ``overlap=True`` the executor models communication/computation
overlap: since the gather sends of phase 1 are asynchronous, the
iteration points whose reads are all locally owned (the *interior*,
derived by ``LoopAnalysis.interior_count``) are charged as a Compute op
*between* phases 1 and 2, so that work proceeds while ghost values are
in flight; only the remaining boundary points are charged after the
receives.  The wire content is identical in both modes -- overlap
changes when time is charged, never what is sent.

Analyses are cached by structural loop key, so loops re-executed every
iteration (the common case) compile once; the read-side gather
schedules and the write-side scatter schedules both replay from the
cached analysis through the shared transfer executor without
re-deriving any index list.

Two executors drive the phases.  The default compiled path
(``compiled=True``) replays the rank's frozen
:class:`~repro.compiler.commgen.StepPlan`: statement right-hand sides
lowered once into closures over pre-bound numpy ufuncs, array
references pre-resolved to workspace positions (slice views for box
patterns), store coordinates frozen, workspaces persistent -- the
steady-state sweep never walks an expression AST or evaluates an
affine index.  The interpreted path (``compiled=False``) re-derives
all of that per sweep and is kept as the reference semantics; both
produce bit-identical results, traces, and cache accounting (see
docs/performance.md).
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import Any, Callable

import numpy as np

from repro.compiler import access as acc
from repro.compiler.commgen import LoopAnalysis
from repro.compiler.commsched import (
    execute_transfer,
    transfer_local_move,
    transfer_recvs,
    transfer_sends,
    uid_chain,
)
from repro.lang.doall import Doall
from repro.lang.expr import BinOp, Const, Ref
from repro.machine.ops import Compute, Mark, Recv, Send
from repro.util.errors import CompileError, ValidationError

#: Every live PlanCache (including session-owned ones), so that
#: layout-invalidation hooks (``drop_plans_for_array``) reach plans no
#: matter which Session compiled them.  Weak: a Session's caches die
#: with the Session.
_ALL_PLAN_CACHES: "weakref.WeakSet[PlanCache]" = weakref.WeakSet()


def _loop_uids(loop: Doall) -> tuple:
    """uids of every array (and section base) the loop touches."""
    out: set[int] = set()
    for arr in loop.arrays():
        out.update(uid_chain(arr))
    return tuple(out)


class PlanCache:
    """Keyed store of compiled plans with per-kind hit/miss accounting.

    Holds every *locally derivable* compiled artifact: doall loop
    analyses (kind ``"doall"`` -- these carry the frozen gather/scatter
    :class:`~repro.compiler.commsched.TransferSchedule` objects) and the
    ADI line-solve plans (kind ``"adi-line"``,
    :mod:`repro.tensor.adi`).  Wire schedules that need a collective
    build protocol live in the companion
    :class:`~repro.compiler.commsched.ScheduleCache` instead.

    Entries are LRU-bounded: plan keys embed each array's ``comm_epoch``
    (and uid), so a redistribution orphans the old entries; they are
    purged eagerly by :func:`drop_plans_for_array` and, as a backstop,
    evicted once the cache exceeds the cap.  Eviction is always safe --
    plans are derived deterministically and locally, so a rank
    recompiling what another rank still has cached produces identical
    communication.

    The cache is **thread-safe** and may be shared by many Sessions (the
    serving layer, :mod:`repro.serve`, does exactly that): every probe,
    store, LRU touch, counter bump, and purge happens under one
    re-entrant lock, and a miss holds the lock *across* ``build()`` so
    one compile serves every concurrent requester of the same key --
    compile once, serve everyone.  That is sound because the cached
    artifacts are immutable once published: a
    :class:`~repro.compiler.commgen.LoopAnalysis` and its frozen
    :class:`~repro.compiler.commsched.TransferSchedule` objects are
    never mutated after construction, and the analysis's two lazy
    memoizations (per-rank StepPlans, the overlap interior split) are
    guarded by the analysis's own lock -- so replaying a shared plan
    from many threads needs no further synchronization.  See
    "Thread safety and the immutability contract" in ``docs/api.md``.

    >>> cache = PlanCache(max_entries=8)
    >>> cache.get("demo", ("k",), lambda: 42)
    (42, False)
    >>> cache.get("demo", ("k",), lambda: 43)   # replays the cached plan
    (42, True)
    >>> cache.kind_stats()
    {'demo': {'hits': 1, 'misses': 1}}
    """

    def __init__(self, max_entries: int = 4096):
        if max_entries <= 0:
            raise ValidationError("PlanCache needs max_entries >= 1")
        self.max_entries = max_entries
        # (kind, key) -> (plan, uids of the arrays the plan was built on)
        self._entries: OrderedDict[tuple, tuple[Any, tuple]] = OrderedDict()
        #: per-kind hit/miss counters, e.g. ``{"doall": {"hits": 9,
        #: "misses": 1}}``
        self.by_kind: dict[str, dict[str, int]] = {}
        # guards entries, LRU order, and counters; re-entrant because a
        # build() may consult the cache it is being stored into
        self._lock = threading.RLock()
        _ALL_PLAN_CACHES.add(self)

    def __len__(self) -> int:
        return len(self._entries)

    def _count(self, kind: str, outcome: str) -> None:
        d = self.by_kind.setdefault(kind, {"hits": 0, "misses": 0})
        d[outcome] += 1

    def get(self, kind: str, key, build: Callable[[], Any], uids=(),
            count: bool = True) -> tuple[Any, bool]:
        """Cached plan under ``(kind, key)``; returns ``(plan, was_cached)``.

        On a miss ``build()`` derives the plan, which is stored tagged
        with ``uids`` (the arrays it depends on) so
        :meth:`drop_for_array` can purge it on redistribution; pass a
        zero-argument callable to defer that derivation to the miss
        path and keep hits walk-free.  ``count=False`` makes a
        read-only peek: the hit counter stays untouched, so
        static-analysis lookups (estimates, explain) do not inflate the
        replay statistics.  A miss always counts -- it did the compile
        work.

        The lock is held across ``build()``: concurrent requesters of
        one uncompiled key serialize on the single compile and all
        receive the same plan object, instead of racing N redundant
        compiles whose last store wins.
        """
        k = (kind, key)
        with self._lock:
            entry = self._entries.get(k)
            if entry is not None:
                self._entries.move_to_end(k)
                if count:
                    self._count(kind, "hits")
                return entry[0], True
            plan = build()
            self._count(kind, "misses")
            self._entries[k] = (plan, tuple(uids() if callable(uids) else uids))
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return plan, False

    def analysis(self, loop: Doall, count: bool = True) -> tuple[LoopAnalysis, bool]:
        """Cached :class:`LoopAnalysis` of ``loop``; ``(analysis, was_cached)``.

        The structural key is computed once here -- it walks the whole
        loop body, so the replay path must not derive it twice per
        execution.
        """
        # uids deferred to the miss path: a replay must pay for one
        # loop-body walk (the key), never two
        return self.get(
            "doall", loop.key(), lambda: LoopAnalysis(loop),
            uids=lambda: _loop_uids(loop), count=count,
        )

    def count_replay(self, kind: str) -> None:
        """Record an as-if hit for a plan the caller already holds.

        The compiled replay driver (``Program.run``) resolves each
        loop's analysis once per run and replays it every sweep; the
        interpreted path probes the cache per sweep instead.  Counting
        the replays here keeps the hit/miss accounting identical between
        the two executors without paying for the structural key walk.
        """
        with self._lock:
            self._count(kind, "hits")

    def clear_kind(self, kind: str) -> int:
        """Drop every plan of one kind; returns the count removed."""
        with self._lock:
            doomed = [k for k in self._entries if k[0] == kind]
            for k in doomed:
                del self._entries[k]
            return len(doomed)

    def drop(self, kind: str, key) -> None:
        with self._lock:
            self._entries.pop((kind, key), None)

    def drop_loop(self, loop: Doall) -> None:
        self.drop("doall", loop.key())

    def drop_for_array(self, array) -> int:
        """Purge every plan built against ``array`` (or a section of
        it); returns the count.  Called on redistribution so orphaned
        plans (their keys embed the old comm epoch) do not accumulate.
        """
        uid = array.uid
        with self._lock:
            doomed = [k for k, (_, uids) in self._entries.items() if uid in uids]
            for k in doomed:
                del self._entries[k]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.by_kind = {}

    def stats(self) -> dict[str, int]:
        with self._lock:
            hits = sum(d["hits"] for d in self.by_kind.values())
            misses = sum(d["misses"] for d in self.by_kind.values())
            return {
                "entries": len(self._entries), "hits": hits, "misses": misses,
            }

    def kind_stats(self) -> dict[str, dict[str, int]]:
        """Per-kind hit/miss counters (kinds seen so far)."""
        with self._lock:
            return {k: dict(v) for k, v in self.by_kind.items()}


#: Plan cache behind the implicit default Session (the deprecated
#: ``run_spmd`` / hand-wired ``KaliCtx`` path).  Sessions own their own
#: PlanCache; see :mod:`repro.session`.
DEFAULT_PLANS = PlanCache()


def plans_of(ctx) -> PlanCache:
    """The plan cache governing ``ctx``: its Session's, else the default."""
    session = getattr(ctx, "session", None)
    return DEFAULT_PLANS if session is None else session.plans


def clear_plan_cache() -> None:
    """Reset the default plan cache -- doall analyses *and* every other
    plan kind riding in it, e.g. the ADI line plans (mostly for tests).
    Session-owned caches are unaffected; clear those per session."""
    DEFAULT_PLANS.clear()


def drop_plan(loop: Doall) -> None:
    """Forget one loop's cached analysis in *every* live plan cache
    (``Doall.invalidate_plan`` hook)."""
    for cache in list(_ALL_PLAN_CACHES):
        cache.drop_loop(loop)


def drop_plans_for_array(array) -> int:
    """Purge plans referencing ``array`` from every live plan cache."""
    return sum(cache.drop_for_array(array) for cache in list(_ALL_PLAN_CACHES))


def get_analysis(loop: Doall) -> tuple[LoopAnalysis, bool]:
    """Cached analysis of ``loop`` in the default plan cache."""
    return DEFAULT_PLANS.analysis(loop)


class _Workspace:
    """Gathered read data for one array on one rank."""

    __slots__ = ("needed", "data")

    def __init__(self, needed: list[np.ndarray], dtype):
        self.needed = needed
        self.data = np.empty([n.size for n in needed], dtype=dtype)

    def put_at(self, pos: tuple, values: np.ndarray) -> None:
        """Scatter a box of values through precomputed positions."""
        self.data[pos] = values

    def fetch(self, idx_arrays: list[np.ndarray]) -> np.ndarray:
        pos = tuple(
            acc.positions_in(n, np.asarray(g)) for n, g in zip(self.needed, idx_arrays)
        )
        return self.data[pos]


def _eval_expr(expr, workspaces: dict[int, _Workspace], iters) -> np.ndarray | float:
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Ref):
        ws = workspaces[id(expr.array)]
        idx = [acc.eval_index(e, iters) for e in expr.idx]
        return ws.fetch(idx)
    if isinstance(expr, BinOp):
        left = _eval_expr(expr.left, workspaces, iters)
        right = _eval_expr(expr.right, workspaces, iters)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        return left / right
    raise CompileError(f"cannot evaluate expression {expr!r}")


def execute_doall(ctx, loop: Doall, overlap: bool = False, compiled: bool | None = None):
    """Yield the machine ops realizing this rank's share of ``loop``.

    With ``overlap=True`` the interior iteration points (reads all
    locally owned) are charged before the ghost receives, modeling
    computation proceeding while remote values are in flight; the wire
    content is unchanged.

    ``compiled`` selects the executor: True (the default, inherited from
    the context / its Session) replays the rank's frozen
    :class:`~repro.compiler.commgen.StepPlan` -- prebound numpy calls,
    no per-sweep expression interpretation; False runs the interpreted
    reference path.  Both produce bit-identical results, traces, and
    cache accounting.
    """
    me = ctx.rank
    if not loop.grid.contains(me):
        raise CompileError(f"rank {me} executing doall outside its grid")
    analysis, reused = plans_of(ctx).analysis(loop)
    yield from replay_analysis(
        ctx, analysis, overlap=overlap, compiled=compiled, reused=reused
    )


def replay_analysis(
    ctx, analysis: LoopAnalysis, overlap: bool = False,
    compiled: bool | None = None, reused: bool = True,
):
    """Drive one rank's share of an already-resolved doall analysis.

    The replay half of :func:`execute_doall`, split out so a caller
    holding the analysis (``Program.run``'s steady-state loop resolves
    each loop's plan once per run) can skip the per-sweep cache probe --
    the structural key walk -- entirely.  ``reused`` feeds the
    ``commsched/hit`` vs ``commsched/build`` mark, mirroring what a
    probe would have reported.
    """
    me = ctx.rank
    if compiled is None:
        compiled = getattr(ctx, "compiled", True)
    tag = ctx.next_tag(analysis.loop.grid)
    yield from announce_replay(ctx, analysis, reused)
    if compiled:
        yield from _replay_step_plan(ctx, analysis.step_plan(me), overlap, tag)
    else:
        yield from _interpret_doall(ctx, analysis, overlap, tag)


def replay_batch_analysis(
    ctx, analysis: LoopAnalysis, blocks: dict, nbatch: int,
    overlap: bool = False, reused: bool = True,
):
    """Drive one rank's share of a doall over ``nbatch`` bindings at once.

    The batched twin of :func:`replay_analysis` behind
    ``Program.run_batch``: the same frozen schedules replay once per
    sweep, but every fetch, closure, and store carries a leading batch
    axis, so one pass advances all ensemble members together.  ``blocks``
    maps ``array.uid`` to this rank's batched local block -- shape
    ``(nbatch,) + local shape`` -- which the driver reads ghosts from
    and stores results into (the live arrays are never touched; the
    caller owns the batched copies and the write-back).

    Wire discipline: message *counts* and tags are identical to one
    single-binding sweep -- each payload slot just widens by the batch
    factor.  Compute charges scale by ``nbatch`` (the ensemble honestly
    does that many members' flops).
    """
    me = ctx.rank
    tag = ctx.next_tag(analysis.loop.grid)
    yield from announce_replay(ctx, analysis, reused)
    yield from _replay_batch_plan(
        ctx, analysis.step_plan(me, nbatch=nbatch), tag, blocks, overlap
    )


def _replay_batch_plan(ctx, plan, tag, blocks: dict, overlap: bool):
    """Replay a batched :class:`~repro.compiler.commgen.StepPlan`.

    Mirrors :func:`_replay_step_plan` exactly, with two substitutions:
    reads and stores go through the caller's batched shadow blocks
    instead of ``array.local(rank)``, and the transfer ``read``/``write``
    callables prefix every frozen selection with ``slice(None)`` on the
    batch axis (the plan's own recipes are pre-prefixed at build time).
    """
    readers: list[tuple] = []
    for wire_kind, array, sched, buf in plan.reads:
        if sched is None:
            continue
        if sched.sends or sched.self_src is not None:
            read = _batch_get(blocks[array.uid])
        else:
            read = None
        yield from transfer_sends(ctx, sched, read, tag=tag, kind=wire_kind)
        if buf is not None:
            transfer_local_move(sched, read, _batch_put(buf))
        if sched.recvs:
            readers.append((sched, buf, wire_kind))

    interior, interior_flops, remaining, remaining_flops = plan.charges(overlap)
    if interior:
        yield Compute(flops=interior_flops, label=plan.label_interior)

    for sched, buf, wire_kind in readers:
        yield from transfer_recvs(
            ctx, sched, _batch_put(buf), tag=tag, kind=wire_kind
        )

    if remaining:
        yield Compute(
            flops=remaining_flops,
            label=plan.label_boundary if interior else plan.label,
        )

    stmt_vals = [None if fn is None else fn() for fn in plan.evals]

    nb = plan.nbatch
    for values, store in zip(stmt_vals, plan.stores):
        if store is None:
            continue
        op = store[0]
        if op == "box":
            _, array, locs, perm, boxshape = store
            blocks[array.uid][locs] = values.transpose(perm).reshape(boxshape)
        elif op == "flat":
            _, array, locs = store
            blocks[array.uid][locs] = values.reshape(nb, -1)
        else:  # "transfer": remote-write scatter replay
            _, array, sched, wire_kind = store
            yield from execute_transfer(
                ctx,
                sched,
                read=_batch_reader(
                    None if values is None else values.reshape(nb, -1)
                ),
                write=_batch_writer(blocks, array.uid),
                tag=tag,
                kind=wire_kind,
            )


def announce_replay(ctx, analysis: LoopAnalysis, reused: bool):
    """Announce one doall replay (or compile) to the trace.

    Yields the ``commsched/hit`` / ``commsched/build`` Marks -- or, in
    cheap-marks mode, aggregates counters on the context and yields
    nothing (the Session folds the counts into ``Trace.mark_counts``
    after the run).  Shared by the live executors *and* the
    multiprocessing backend's shadow replay, so the two op streams can
    never drift on mark content.
    """
    kind = "commsched/hit" if reused else "commsched/build"
    if getattr(ctx, "marks", "full") == "cheap":
        note = ctx.count_mark
        note(kind, "doall")
        if analysis.has_read_transfers:
            note(kind, "gather")
        if analysis.has_remote_writes:
            note(kind, "scatter")
        return
    yield Mark(kind, payload=("doall", analysis.var_label))
    if analysis.has_read_transfers:
        # the loop's gather schedules replay (or compile) together
        # with the plan; announce them under their own direction so
        # per-direction reuse reporting sees the read side
        yield Mark(kind, payload=("gather", analysis.read_names))
    if analysis.has_remote_writes:
        # likewise for the write-side scatter schedules
        yield Mark(kind, payload=("scatter", analysis.scatter_names))


def _replay_step_plan(ctx, plan, overlap: bool, tag):
    """Replay a frozen :class:`~repro.compiler.commgen.StepPlan`.

    The compiled hot loop: every index array, closure, label, and flop
    charge was frozen at plan-build time; each sweep is sends, local
    moves, receives, prebound rhs closures, and prebound stores.  The
    yielded op stream is bit-identical to :func:`_interpret_doall`.
    """
    me = ctx.rank
    readers: list[tuple] = []
    for wire_kind, array, sched, buf in plan.reads:
        if sched is None:
            continue
        if sched.sends or sched.self_src is not None:
            read = array.local(me).__getitem__
        else:
            read = None
        yield from transfer_sends(ctx, sched, read, tag=tag, kind=wire_kind)
        if buf is not None:
            transfer_local_move(sched, read, buf.__setitem__)
        if sched.recvs:
            readers.append((sched, buf, wire_kind))

    interior, interior_flops, remaining, remaining_flops = plan.charges(overlap)
    if interior:
        yield Compute(flops=interior_flops, label=plan.label_interior)

    for sched, buf, wire_kind in readers:
        yield from transfer_recvs(ctx, sched, buf.__setitem__, tag=tag, kind=wire_kind)

    if remaining:
        yield Compute(
            flops=remaining_flops,
            label=plan.label_boundary if interior else plan.label,
        )

    stmt_vals = [None if fn is None else fn() for fn in plan.evals]

    for values, store in zip(stmt_vals, plan.stores):
        if store is None:
            continue
        op = store[0]
        if op == "box":
            _, array, locs, perm, boxshape = store
            array.local(me)[locs] = values.transpose(perm).reshape(boxshape)
        elif op == "flat":
            _, array, locs = store
            array.local(me)[locs] = values.reshape(-1)
        else:  # "transfer": remote-write scatter replay
            _, array, sched, wire_kind = store
            yield from execute_transfer(
                ctx,
                sched,
                read=_reader(None if values is None else values.reshape(-1)),
                write=_writer(array, me),
                tag=tag,
                kind=wire_kind,
            )


def _interpret_doall(ctx, analysis: LoopAnalysis, overlap: bool, tag):
    """The interpreted reference executor (``compiled=False``).

    Re-derives workspace positions and walks the expression ASTs every
    sweep; kept as the semantics the compiled fast path must match
    bit-for-bit (the equivalence tests diff the two op streams).
    """
    me = ctx.rank
    iters = analysis.iters[me]
    label = f"doall[{analysis.var_label}]"

    # ---- phase 1: gather-schedule sends + local moves --------------------
    # Each read array's frozen gather TransferSchedule replays through
    # the shared transfer executor: the send half posts pre-write
    # snapshots (copy-in), the local move copies own data into the
    # workspace.  Sends for *all* arrays go out before any receive, so
    # they are in flight together.
    workspaces: dict[int, _Workspace] = {}
    readers: list[tuple] = []  # (arr_idx, sched, workspace) pending recv halves
    for arr_idx, plans in enumerate(analysis.read_plans):
        plan = plans[me]
        array = plan.array
        if plan.needed is not None:
            workspaces[id(array)] = _Workspace(plan.needed, array.dtype)
        sched = plan.transfer
        if sched is None:
            continue
        ws = workspaces.get(id(array))
        if sched.sends or sched.self_src is not None:
            block = array.local(me)
            read = block.__getitem__
        else:
            read = None
        yield from transfer_sends(ctx, sched, read, tag=tag, kind=f"gh{arr_idx}")
        if ws is not None:
            transfer_local_move(sched, read, ws.put_at)
        if sched.recvs:
            # recvs are only frozen for ranks with needed data, so a
            # workspace always exists here
            readers.append((arr_idx, sched, ws))

    # ---- phase 1b (overlap): interior compute while ghosts fly -----------
    n_points = iters.count()
    interior = analysis.interior_count(me) if overlap else 0
    remaining = n_points - interior
    if interior:
        yield Compute(
            flops=interior * analysis.flops_per_point(),
            label=f"{label}/interior",
        )

    # ---- phase 2: gather-schedule receives -------------------------------
    for arr_idx, sched, ws in readers:
        yield from transfer_recvs(ctx, sched, ws.put_at, tag=tag, kind=f"gh{arr_idx}")

    # ---- phase 3: evaluate (boundary points under overlap) ---------------
    if remaining:
        yield Compute(
            flops=remaining * analysis.flops_per_point(),
            label=f"{label}/boundary" if interior else label,
        )

    stmt_vals: list[np.ndarray | None] = []
    for sa in analysis.stmts:
        if n_points:
            values = _eval_expr(sa.stmt.rhs, workspaces, iters)
            stmt_vals.append(
                np.broadcast_to(
                    np.asarray(values, dtype=sa.lhs_array.dtype), iters.shape()
                )
            )
        else:
            stmt_vals.append(None)

    # ---- phase 4: scatter-schedule replay ---------------------------------
    # All-local statements store through their frozen open-mesh box (or
    # per-sweep flat coordinates when not box-decomposable); statements
    # with remote writes replay their frozen scatter TransferSchedule:
    # local stores and outgoing messages read the flat value vector
    # through precomputed selection arrays, incoming messages (values
    # only, no index lists) land through precomputed local-block
    # coordinates.
    for stmt_idx, sa in enumerate(analysis.stmts):
        wplan = analysis.write_plans[stmt_idx][me]
        values = stmt_vals[stmt_idx]
        if analysis.writes_local:
            if values is None:
                continue
            if wplan.local_box is not None:
                locs, perm, shape = wplan.local_box
                sa.lhs_array.local(me)[locs] = values.transpose(perm).reshape(shape)
            else:
                _flat_local_store(sa, iters, me, values)
            continue
        sched = wplan.transfer
        if sched is None:
            continue
        yield from execute_transfer(
            ctx,
            sched,
            read=_reader(None if values is None else values.reshape(-1)),
            write=_writer(sa.lhs_array, me),
            tag=tag,
            kind=f"wr{stmt_idx}",
        )


def _flat_local_store(sa, iters, rank: int, values: np.ndarray) -> None:
    """Per-sweep fallback for non-box-decomposable all-local writes."""
    array = sa.lhs_array
    idx_arrays = sa.lhs_index_arrays(iters)
    full_idx = [
        np.broadcast_to(np.asarray(a), values.shape).reshape(-1)
        for a in idx_arrays
    ]
    locs = tuple(
        np.asarray(array.dim(k).local_index(full_idx[k]), dtype=np.int64)
        for k in range(array.ndim)
    )
    array.local(rank)[locs] = values.reshape(-1)


def shadow_replay_analysis(
    ctx, analysis: LoopAnalysis, overlap: bool = False, reused: bool = True,
):
    """Data-free mirror of :func:`replay_analysis` (compiled path).

    Yields the *exact* op stream a compiled replay of ``analysis``
    produces -- same Marks, same Compute flops and labels, same Sends
    (tag and byte count) and Recvs in the same order -- but moves no
    array data: sends carry ``data=None`` with the frozen payload's
    byte count, receives discard, and no store runs.  This is how the
    multiprocessing backend derives its cost-model-stamped trace: the
    floats are computed by real parallel workers, while the inner
    simulator runs this shadow stream to produce a trace bit-identical
    to what the simulator backend would have recorded.

    Deliberately takes the analysis (never probing the plan cache):
    cache accounting for a shadowed run is done once by the parent, not
    once per shadow rank.
    """
    me = ctx.rank
    tag = ctx.next_tag(analysis.loop.grid)
    yield from announce_replay(ctx, analysis, reused)
    yield from _shadow_step_plan(ctx, analysis.step_plan(me), overlap, tag)


def _shadow_step_plan(ctx, plan, overlap: bool, tag):
    """Data-free mirror of :func:`_replay_step_plan` -- ops only."""
    me = ctx.rank
    readers: list[tuple] = []
    for wire_kind, array, sched, _buf in plan.reads:
        if sched is None:
            continue
        itemsize = array.dtype.itemsize
        for dst, src_idx in sched.sends:
            yield Send(
                dst, None, tag=(tag, wire_kind, me),
                nbytes=_index_nbytes(src_idx, itemsize),
            )
        if sched.recvs:
            readers.append((sched, wire_kind))

    interior, interior_flops, remaining, remaining_flops = plan.charges(overlap)
    if interior:
        yield Compute(flops=interior_flops, label=plan.label_interior)

    for sched, wire_kind in readers:
        for src, _dst_idx in sched.recvs:
            yield Recv(src=src, tag=(tag, wire_kind, src))

    if remaining:
        yield Compute(
            flops=remaining_flops,
            label=plan.label_boundary if interior else plan.label,
        )

    for store in plan.stores:
        if store is None or store[0] != "transfer":
            continue
        _, array, sched, wire_kind = store
        itemsize = array.dtype.itemsize
        for dst, sel in sched.sends:
            yield Send(
                dst, None, tag=(tag, wire_kind, me),
                nbytes=_index_nbytes(sel, itemsize),
            )
        for src, _dst_idx in sched.recvs:
            yield Recv(src=src, tag=(tag, wire_kind, src))


def _index_nbytes(idx, itemsize: int) -> int:
    """Byte count of the payload a source-side index selection reads.

    Matches ``read(idx).nbytes`` for the two frozen send-index forms: an
    open-mesh ``np.ix_`` tuple (gather sends; payload size is the
    product of the per-dimension sizes) and a flat selection array
    (scatter sends into the value vector).
    """
    if isinstance(idx, tuple):
        n = 1
        for a in idx:
            n *= int(np.asarray(a).size)
    else:
        n = int(np.asarray(idx).size)
    return n * int(itemsize)


def _reader(flat: np.ndarray | None):
    """Selection reads from one statement's flat value vector."""
    def read(sel):
        assert flat is not None, "schedule sends values on an empty rank"
        return flat[sel]
    return read


def _writer(array, rank: int):
    """Stores through frozen local-block coordinates."""
    def write(locs, values):
        array.local(rank)[locs] = values
    return write


def _lead(idx) -> tuple:
    """Prefix a frozen schedule selection with the batch axis.

    Schedules freeze two selection forms: open-mesh tuples (gather
    send/recv sides, local boxes) and flat coordinate arrays (scatter
    selections).  Either way the batched form is the same selection on
    every ensemble member at once.
    """
    if not isinstance(idx, tuple):
        idx = (idx,)
    return (slice(None),) + idx


def _batch_get(block: np.ndarray):
    """Batched source reads: the frozen selection, on every member."""
    def read(idx):
        return block[_lead(idx)]
    return read


def _batch_put(buf: np.ndarray):
    """Batched workspace stores (local moves and ghost receives)."""
    def write(idx, values):
        buf[_lead(idx)] = values
    return write


def _batch_reader(flat: np.ndarray | None):
    """Selection reads from one statement's batched value matrix.

    ``flat`` is the ``(nbatch, points)`` reshape of the statement's
    value box; a scatter selection picks the same columns for every
    member.  The fancy read owns its data, so
    :func:`~repro.compiler.commsched.freeze_payload` ships it copy-free.
    """
    def read(sel):
        assert flat is not None, "schedule sends values on an empty rank"
        return flat[:, sel]
    return read


def _batch_writer(blocks: dict, uid):
    """Stores through frozen local-block coordinates, batched.

    Looks the block up lazily: a rank can be a pure *sender* for a
    scatter (it owns none of the lhs), in which case its write side
    never runs and no batched block need exist.
    """
    def write(locs, values):
        blocks[uid][_lead(locs)] = values
    return write
