"""Access analysis: which global elements each processor reads and writes.

For every rank and every referenced array we compute per-dimension
sorted unique index arrays ("needed lists").  Their box product is the
(possibly over-approximated, as in real halo compilers) region the rank
must have available locally before evaluating its iterations.  The same
machinery evaluates left-hand-side index arrays for the write phase.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.stripmine import IterSet
from repro.lang.array import BaseDistArray
from repro.lang.doall import Doall
from repro.lang.expr import Assign, Ref
from repro.util.errors import CompileError


def eval_index(expr, iters: IterSet) -> np.ndarray:
    """Evaluate an affine index expression over an iteration set.

    Returns a broadcast-ready array (minimal shape); constants give 0-d.
    """
    return expr.evaluate(iters.env())


def needed_lists(
    array: BaseDistArray, refs: list[Ref], iters: IterSet
) -> list[np.ndarray] | None:
    """Per-dimension sorted unique global indices read by ``iters``.

    Returns None when the iteration set is empty (nothing needed).
    Raises CompileError for out-of-bounds reads.
    """
    if iters.empty:
        return None
    dims: list[np.ndarray] = []
    for k in range(array.ndim):
        pieces = []
        for ref in refs:
            vals = eval_index(ref.idx[k], iters)
            pieces.append(np.asarray(vals).reshape(-1))
        merged = np.unique(np.concatenate(pieces))
        if merged.size and (merged[0] < 0 or merged[-1] >= array.shape[k]):
            raise CompileError(
                f"read of {array.name!r} dim {k} out of bounds "
                f"[{merged[0]}, {merged[-1]}] for extent {array.shape[k]}"
            )
        dims.append(merged)
    return dims


def owned_lists(array: BaseDistArray, rank: int) -> list[np.ndarray] | None:
    """Per-dimension global indices stored by ``rank`` (None if not an owner)."""
    if not array.grid.contains(rank):
        return None
    return array.owned_lists(rank)


def intersect_lists(
    a: list[np.ndarray] | None, b: list[np.ndarray] | None
) -> list[np.ndarray] | None:
    """Per-dimension intersection of two box products (None if empty)."""
    if a is None or b is None:
        return None
    out = []
    for x, y in zip(a, b):
        z = np.intersect1d(x, y, assume_unique=True)
        if z.size == 0:
            return None
        out.append(z)
    return out


def positions_in(needed: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Positions of ``idx`` values inside the sorted unique ``needed`` list."""
    pos = np.searchsorted(needed, idx)
    return pos


class StmtAccess:
    """Per-statement access info shared across ranks."""

    def __init__(self, stmt: Assign):
        self.stmt = stmt
        self.lhs_array: BaseDistArray = stmt.lhs.array
        self.rhs_refs = stmt.rhs.refs()
        if self.lhs_array.replicated and self.lhs_array.grid.size > 1:
            # On a single-processor grid replication is trivially
            # consistent; otherwise copies would diverge.
            raise CompileError(
                f"cannot assign to replicated array {self.lhs_array.name!r} "
                "inside a doall loop"
            )

    def lhs_index_arrays(self, iters: IterSet) -> list[np.ndarray]:
        """Broadcast-ready lhs global index arrays, one per array dim."""
        out = []
        for k in range(self.lhs_array.ndim):
            vals = eval_index(self.stmt.lhs.idx[k], iters)
            arr = np.asarray(vals)
            mn = arr.min() if arr.size else 0
            mx = arr.max() if arr.size else -1
            if arr.size and (mn < 0 or mx >= self.lhs_array.shape[k]):
                raise CompileError(
                    f"write to {self.lhs_array.name!r} dim {k} out of bounds "
                    f"[{mn}, {mx}] for extent {self.lhs_array.shape[k]}"
                )
            out.append(arr)
        return out


def arrays_read(loop: Doall) -> dict[int, tuple[BaseDistArray, list[Ref]]]:
    """Map id(array) -> (array, rhs refs of it) over the whole body."""
    out: dict[int, tuple[BaseDistArray, list[Ref]]] = {}
    for st in loop.body:
        for ref in st.rhs.refs():
            key = id(ref.array)
            if key not in out:
                out[key] = (ref.array, [])
            out[key][1].append(ref)
    return out


def writes_are_local(loop: Doall) -> bool:
    """Fast-path detection: every write lands on the executing processor.

    True when the on clause is Owner(A, idx) and every statement's lhs is
    the same array subscripted with the same expressions on all
    distributed dimensions.  This covers every stencil loop in the paper.
    """
    from repro.lang.doall import Owner

    if not isinstance(loop.on, Owner):
        return False
    on_arr = loop.on.array
    for st in loop.body:
        if st.lhs.array is not on_arr:
            return False
        for k in range(on_arr.ndim):
            if on_arr.grid_dim_of(k) is None:
                continue
            e_on = loop.on.idx[k]
            if e_on is None:
                return False
            if e_on.key() != st.lhs.idx[k].key():
                return False
    return True
