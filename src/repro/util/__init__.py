"""Shared utilities: error types, index math, validation helpers."""

from repro.util.errors import (
    ReproError,
    MachineError,
    DeadlockError,
    DistributionError,
    CompileError,
    ValidationError,
)
from repro.util.indexing import (
    ceil_div,
    block_bounds,
    block_owner,
    cyclic_owner,
    normalize_range,
    range_length,
    intersect_ranges,
)

__all__ = [
    "ReproError",
    "MachineError",
    "DeadlockError",
    "DistributionError",
    "CompileError",
    "ValidationError",
    "ceil_div",
    "block_bounds",
    "block_owner",
    "cyclic_owner",
    "normalize_range",
    "range_length",
    "intersect_ranges",
]
