"""Integer index math shared by distributions and the compiler.

All ranges here are half-open ``(start, stop)`` pairs over global indices,
matching Python convention.  The KF1 listings use inclusive Fortran bounds;
the language layer converts at its boundary.
"""

from __future__ import annotations

from repro.util.errors import ValidationError


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValidationError(f"ceil_div requires positive divisor, got {b}")
    return -(-a // b)


def block_bounds(n: int, p: int, rank: int) -> tuple[int, int]:
    """Half-open bounds of block ``rank`` when ``n`` items split over ``p``.

    Uses the balanced splitting rule: the first ``n % p`` blocks get
    ``n // p + 1`` items.  For ``n % p == 0`` this is the paper's
    ``l_i = (i-1)n/p + 1 .. u_i = i n/p`` rule (0-indexed, half-open).
    """
    if not 0 <= rank < p:
        raise ValidationError(f"rank {rank} out of range for p={p}")
    base, extra = divmod(n, p)
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


def block_owner(n: int, p: int, index: int) -> int:
    """Owner rank of global ``index`` under the balanced block rule."""
    if not 0 <= index < n:
        raise ValidationError(f"index {index} out of range for n={n}")
    base, extra = divmod(n, p)
    split = extra * (base + 1)
    if index < split:
        return index // (base + 1)
    if base == 0:
        # n < p: every item lives in one of the first ``extra`` blocks.
        raise ValidationError(f"index {index} unowned: n={n} < p={p}")
    return extra + (index - split) // base


def cyclic_owner(p: int, index: int) -> int:
    """Owner rank of global ``index`` under round-robin distribution."""
    return index % p


def normalize_range(lo: int, hi: int, step: int = 1) -> tuple[int, int, int]:
    """Validate and normalize a half-open strided range."""
    if step <= 0:
        raise ValidationError(f"range step must be positive, got {step}")
    if hi < lo:
        hi = lo
    return lo, hi, step


def range_length(lo: int, hi: int, step: int = 1) -> int:
    """Number of points in ``range(lo, hi, step)``."""
    if hi <= lo:
        return 0
    return ceil_div(hi - lo, step)


def intersect_ranges(a: tuple[int, int], b: tuple[int, int]) -> tuple[int, int]:
    """Intersection of two half-open ranges; empty results have hi <= lo."""
    return max(a[0], b[0]), min(a[1], b[1])
