"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class MachineError(ReproError):
    """Error in the simulated machine layer (bad rank, bad op, ...)."""


class DeadlockError(MachineError):
    """All live processors are blocked and no messages are in flight.

    Carries a per-processor diagnosis of what each blocked processor was
    waiting for, so a user can see the mismatched send/recv immediately.
    """

    def __init__(self, blocked: dict):
        self.blocked = dict(blocked)
        lines = ["deadlock: all live processors blocked on receives"]
        for rank in sorted(self.blocked):
            src, tag = self.blocked[rank]
            lines.append(f"  proc {rank}: waiting on recv(src={src!r}, tag={tag!r})")
        super().__init__("\n".join(lines))


class DistributionError(ReproError):
    """Invalid data-distribution specification or index mapping."""


class CompileError(ReproError):
    """The mini-compiler could not lower a doall loop."""


class ValidationError(ReproError):
    """Invalid argument to a public API function."""


class ReproDeprecationWarning(DeprecationWarning):
    """A deprecated repro entry point was used.

    Raised-as-warning by the legacy shims (``run_spmd``, session-less
    ``KaliCtx.doall``) that route through the implicit default
    :class:`~repro.session.Session`.  The tier-1 test configuration
    turns this warning into an error inside ``tests/`` so migrated code
    cannot silently regress onto the process-global path; user code
    merely sees a ``DeprecationWarning``.
    """
