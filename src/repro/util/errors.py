"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class MachineError(ReproError):
    """Error in the simulated machine layer (bad rank, bad op, ...)."""


class DeadlockError(MachineError):
    """All live processors are blocked and no messages are in flight.

    Carries a per-processor diagnosis of what each blocked processor was
    waiting for -- and, when the machine provides it, the ``(src, tag)``
    keys of messages sitting *undelivered* in each stuck rank's mailbox
    (``pending``).  A hang is usually a near-miss between the two lists
    (a tag or source mismatch), so the exception alone diagnoses
    cross-backend protocol drift without re-running under a debugger.
    """

    def __init__(self, blocked: dict, pending: dict | None = None):
        self.blocked = dict(blocked)
        #: rank -> list of (src, tag) mailbox keys that arrived but
        #: matched no receive; empty dict when the machine did not
        #: report mailboxes (e.g. hand-raised errors).
        self.pending = {r: list(keys) for r, keys in (pending or {}).items()}
        lines = ["deadlock: all live processors blocked on receives"]
        for rank in sorted(self.blocked):
            src, tag = self.blocked[rank]
            lines.append(f"  proc {rank}: waiting on recv(src={src!r}, tag={tag!r})")
            if pending is not None:
                keys = self.pending.get(rank)
                if keys:
                    lines.append(
                        "    undelivered mailbox: "
                        + ", ".join(f"(src={s!r}, tag={t!r})" for s, t in keys)
                    )
                else:
                    lines.append("    undelivered mailbox: empty")
        super().__init__("\n".join(lines))


class DistributionError(ReproError):
    """Invalid data-distribution specification or index mapping."""


class CompileError(ReproError):
    """The mini-compiler could not lower a doall loop."""


class ValidationError(ReproError):
    """Invalid argument to a public API function."""


class ServerOverloadError(ReproError):
    """The serving layer refused a request instead of queueing it.

    Raised by :meth:`repro.serve.Server.submit` (and the blocking
    wrappers built on it) when admission control finds the bounded
    queue full, or when the circuit breaker is open after repeated
    backend failures.  Carries ``retry_after`` -- a best-effort hint,
    in seconds, for when the caller should try again (queue-drain
    estimate when overloaded, cooldown remainder when the circuit is
    open).  Shedding load with this error is what keeps accepted
    requests' latency bounded; see ``docs/resilience.md``.
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        #: seconds the caller should wait before retrying (best effort)
        self.retry_after = float(retry_after)
        super().__init__(f"{message} (retry after ~{self.retry_after:.2f}s)")


class ReproDeprecationWarning(DeprecationWarning):
    """A deprecated repro entry point was used.

    Raised-as-warning by the legacy shims (``run_spmd``, session-less
    ``KaliCtx.doall``) that route through the implicit default
    :class:`~repro.session.Session`.  The tier-1 test configuration
    turns this warning into an error inside ``tests/`` so migrated code
    cannot silently regress onto the process-global path; user code
    merely sees a ``DeprecationWarning``.
    """
