"""Prune-then-execute layout autotuning.

Section 2 of the paper promises that distribution tuning is "simple
modifications of this program" plus a performance-estimation tool; this
module closes the loop and removes the programmer entirely.  The search
``bench_dist_tuning`` prototyped -- estimate every candidate statically,
execute only the predicted frontier -- is generalized here to any
compiled loop :class:`~repro.session.Program`:

1. **Enumerate** -- :class:`TuneSpace` spans distributions x grid
   shapes x stripmine (block-cyclic) factors x overlap on/off.  Each
   candidate clones the program's arrays onto the candidate layout and
   recompiles the loops against a scratch Session, so the original
   program is never disturbed.
2. **Predict** -- every candidate is scored through the exact estimator
   (:mod:`repro.compiler.estimate`: messages and bytes read off the
   frozen schedules).  With a plain
   :class:`~repro.machine.costmodel.CostModel` the score is simulated
   critical-path time; with a
   :class:`~repro.machine.calibrate.CalibratedCostModel` it is
   predicted *host* seconds (the serial in-process executor runs ranks
   back to back, so the host predictor sums rank work instead of
   taking the slowest rank, and charges the calibrated per-sweep replay
   overhead per loop).
3. **Execute the frontier** -- only candidates predicted within
   ``prune_factor`` of the best, capped at ``budget`` (default one
   quarter of the enumeration), ever run; the seed layout is always
   forced into the frontier so the winner can be compared against it.
   Executed candidates record predicted-vs-measured error.
4. **Apply** -- :meth:`TuneResult.apply` redistributes the original
   program's arrays onto the winner and re-freezes its plans (the same
   retarget machinery :func:`repro.elastic.morph` uses), so the next
   ``run`` is already an all-hit replay of the chosen layout.

``Session.morph("auto")`` asks :func:`auto_grid` for the target grid,
and ``repro.compile(..., tune=True)`` runs a budgeted search before
returning.  See ``docs/tuning.md`` for the lifecycle.

>>> import numpy as np
>>> from repro import Machine, ProcessorGrid, Session, compile, tune
>>> from repro.lang import DistArray
>>> from repro.tensor.jacobi import build_jacobi_loop
>>> g = ProcessorGrid((2, 2))
>>> X = DistArray((17, 17), g, dist=("block", "block"), name="X")
>>> F = DistArray((17, 17), g, dist=("block", "block"), name="F")
>>> prog = compile(build_jacobi_loop(X, F, 16, g),
...                session=Session(Machine(n_procs=4)))
>>> result = tune(prog, budget=0)        # predict-only: rank, no runs
>>> result.n_executed, result.n_enumerated > 4
(0, True)
>>> result.winner.predicted <= result.seed.predicted
True
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.elastic import (
    _all_locks,
    _loop_programs,
    _refreeze,
    _refuse_sections,
    _same_grid,
    _storage_arrays,
)
from repro.lang.array import DistArray
from repro.lang.dist import BlockCyclic, Star
from repro.lang.doall import Doall, Owner
from repro.lang.expr import Assign, BinOp, Const, Ref
from repro.lang.procs import ProcessorGrid
from repro.machine.calibrate import CalibratedCostModel
from repro.machine.costmodel import CostModel
from repro.machine.simulator import Machine
from repro.util.errors import ValidationError

#: sentinel distribution: keep each array's own per-dimension spec kinds
KEEP = "keep"


@dataclass(frozen=True)
class TuneSpace:
    """The candidate space :func:`tune` enumerates.

    ``distributions`` is a tuple of per-dimension spec tuples (entries
    as :class:`~repro.lang.array.DistArray` accepts them: ``"block"``,
    ``"cyclic"``, ``"*"``, or :class:`~repro.lang.dist.BlockCyclic`),
    or the sentinel :data:`KEEP` to hold every array's current kinds;
    ``None`` derives all placements of the grid's dimensions over the
    lead arrays' dimensions.  ``grid_shapes`` is a tuple of grid
    shapes; ``None`` derives every ordered factorization of the
    machine's processor count, one per grid rank count up to the lead
    arrays' rank.  ``block_sizes`` adds ``BlockCyclic(b)`` (the
    stripmine factors) to the derived spec kinds.  ``overlap`` picks
    the executor variants to score.
    """

    distributions: tuple | None = None
    grid_shapes: tuple | None = None
    block_sizes: tuple = ()
    overlap: tuple = (False, True)


@dataclass
class Candidate:
    """One point of the search space, with its predicted/measured fate."""

    index: int
    dist: object           # spec tuple, or KEEP
    grid_shape: tuple
    overlap: bool
    seed: bool = False
    feasible: bool = True
    #: predicted seconds per sweep (host seconds under a
    #: CalibratedCostModel, simulated seconds otherwise)
    predicted: float = 0.0
    #: exact per-sweep wire totals read off the frozen schedules
    pred_msgs: int = 0
    pred_bytes: int = 0
    executed: bool = False
    #: measured seconds per sweep (same clock as ``predicted``)
    measured: float | None = None
    #: per-sweep wire totals observed by the executed trace (sim mode)
    measured_msgs: float | None = None
    measured_bytes: float | None = None
    #: (measured - predicted) / predicted for executed candidates
    error: float | None = None
    #: the scratch Program this candidate compiled (its arrays hold the
    #: executed results); None for infeasible candidates
    program: object = field(default=None, repr=False, compare=False)

    def label(self) -> str:
        dist = "keep" if self.dist == KEEP else \
            "(" + ", ".join(_spec_name(s) for s in self.dist) + ")"
        return f"{dist} @ {self.grid_shape}" + (" +overlap" if self.overlap else "")

    def as_dict(self) -> dict:
        """JSON-able summary (drops the live scratch program)."""
        return {
            "index": self.index,
            "dist": "keep" if self.dist == KEEP
                    else [_spec_name(s) for s in self.dist],
            "grid_shape": list(self.grid_shape),
            "overlap": self.overlap,
            "seed": self.seed,
            "feasible": self.feasible,
            "predicted_s": self.predicted,
            "pred_msgs": self.pred_msgs,
            "pred_bytes": self.pred_bytes,
            "executed": self.executed,
            "measured_s": self.measured,
            "measured_msgs": self.measured_msgs,
            "measured_bytes": self.measured_bytes,
            "error": self.error,
        }


class TuneResult:
    """Ranked outcome of one :func:`tune` call.

    ``candidates`` is the full enumeration (stable order, seed first);
    ``ranked()`` sorts the feasible ones by predicted time; ``frontier``
    is the executed subset (empty when ``budget=0``); ``winner`` is the
    measured-fastest executed candidate, or the predicted-best when
    nothing ran; ``seed`` is the program's own layout, always present
    and always executed when anything is.  :meth:`apply` moves the
    tuned program onto the winner.
    """

    def __init__(self, program, candidates, frontier, winner, seed, *,
                 mode, cost, iters, prune_factor, budget):
        self.program = program
        self.candidates = candidates
        self.frontier = frontier
        self.winner = winner
        self.seed = seed
        self.mode = mode
        self.cost = cost
        self.iters = iters
        self.prune_factor = prune_factor
        self.budget = budget

    @property
    def n_enumerated(self) -> int:
        return len(self.candidates)

    @property
    def n_executed(self) -> int:
        return len(self.frontier)

    def ranked(self) -> list:
        """Feasible candidates, best predicted first."""
        return sorted(
            (c for c in self.candidates if c.feasible),
            key=lambda c: (c.predicted, c.index),
        )

    def mean_error(self) -> float | None:
        """Mean |predicted-vs-measured| relative error over the frontier."""
        errs = [abs(c.error) for c in self.frontier if c.error is not None]
        return sum(errs) / len(errs) if errs else None

    def apply(self):
        """Move the tuned program onto the winner's layout.

        Holds the program's run lock, quiesces the Session's worker
        pools, redistributes every storage array onto the winner's
        grid/specs, and re-freezes the plans (the morph retarget path)
        -- so the first run after ``apply()`` is an all-hit replay of
        the chosen layout.  Returns the program.
        """
        program, winner = self.program, self.winner
        session = program.session
        new_grid = ProcessorGrid(winner.grid_shape)
        with program.lock:
            session.close_backend()
            for arr in _storage_arrays(program):
                specs = _map_specs(arr, winner.dist, new_grid)
                if specs is None:  # pragma: no cover - winner is feasible
                    raise ValidationError(
                        f"winner layout does not fit array {arr.name!r}"
                    )
                same_specs = _spec_names(specs) == _spec_names(arr.dist.specs)
                if _same_grid(arr.grid, new_grid) and same_specs:
                    continue
                arr.redistribute(specs, grid=new_grid)
                session.cache.invalidate_array(arr)
            _refreeze(session, program, new_grid)
            with session._lock:
                if session.grid is not None:
                    session.grid = new_grid
        return program

    def summary(self) -> str:
        lines = [
            f"tune: {self.n_enumerated} candidates enumerated, "
            f"{self.n_executed} executed ({self.mode} clock, "
            f"prune_factor={self.prune_factor}, budget={self.budget})"
        ]
        for c in self.ranked():
            state = "ran " if c.executed else ("seed" if c.seed else "    ")
            meas = f" measured={c.measured:.3e}s err={c.error:+.1%}" \
                if c.executed else ""
            lines.append(
                f"  [{state}] {c.label():<40} "
                f"predicted={c.predicted:.3e}s{meas}"
            )
        lines.append(f"winner: {self.winner.label()}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TuneResult({self.n_enumerated} candidates, "
            f"{self.n_executed} executed, winner={self.winner.label()!r})"
        )


# ----------------------------------------------------------------------
# Space enumeration
# ----------------------------------------------------------------------


def _spec_name(spec) -> str:
    key = spec.spec_key() if hasattr(spec, "spec_key") else (str(spec),)
    return key[0] if len(key) == 1 else f"{key[0]}({key[1]})"


def _spec_names(specs) -> tuple:
    return tuple(_spec_name(s) for s in specs)


def _factorizations(n: int, ndims: int):
    """Every ordered factorization of ``n`` into ``ndims`` factors."""
    if ndims == 1:
        yield (n,)
        return
    for d in range(1, n + 1):
        if n % d == 0:
            for rest in _factorizations(n // d, ndims - 1):
                yield (d,) + rest


def _placements(ndim: int, grid_ndim: int, kinds):
    """All per-dimension spec tuples distributing ``grid_ndim`` of the
    array's ``ndim`` dimensions, each with one of ``kinds``."""
    if grid_ndim > ndim:
        return
    from itertools import combinations, product

    for dims in combinations(range(ndim), grid_ndim):
        for ks in product(kinds, repeat=grid_ndim):
            spec = ["*"] * ndim
            for dim, kind in zip(dims, ks):
                spec[dim] = kind
            yield tuple(spec)


def _lead_ndim(arrays) -> int:
    """The tuned rank: the largest non-replicated array rank."""
    dims = [a.ndim for a in arrays if not _replicated(a)]
    return max(dims) if dims else max(a.ndim for a in arrays)


def _replicated(arr) -> bool:
    return all(isinstance(s, Star) for s in arr.dist.specs)


def _map_specs(arr, cand_dist, grid: ProcessorGrid):
    """The candidate's per-dimension specs for one array, or None.

    Replicated arrays stay replicated (valid on any grid).  The
    candidate distribution applies to arrays of the tuned rank; other
    distributed arrays keep their own spec kinds, which fit only when
    their distributed-dimension count matches the grid's rank.
    """
    if _replicated(arr):
        return ("*",) * arr.ndim
    specs = arr.dist.specs if cand_dist == KEEP else cand_dist
    if len(specs) != arr.ndim:
        specs = arr.dist.specs
    n_distributed = sum(not isinstance(s, Star) and s != "*" for s in specs)
    if n_distributed != len(grid.shape):
        return None
    return tuple(specs)


def enumerate_candidates(program, space: TuneSpace, n_procs: int) -> list:
    """The full candidate list for ``program`` under ``space``.

    The seed (the program's current layout, overlap off) is candidate 0;
    duplicates of it later in the enumeration are dropped.
    """
    arrays = _storage_arrays(program)
    ndim = _lead_ndim(arrays)
    seed_grid = program.grid.shape
    seed_dist = None
    for a in arrays:
        if not _replicated(a) and a.ndim == ndim:
            seed_dist = tuple(a.dist.specs)
            break
    if seed_dist is None:
        seed_dist = KEEP

    if space.grid_shapes is not None:
        grid_shapes = [tuple(s) for s in space.grid_shapes]
    else:
        grid_shapes = []
        for d in range(1, ndim + 1):
            grid_shapes.extend(_factorizations(n_procs, d))

    kinds = ["block", "cyclic"] + [BlockCyclic(b) for b in space.block_sizes]

    candidates = [Candidate(0, seed_dist, seed_grid, False, seed=True)]
    seen = {(_dist_key(seed_dist), seed_grid, False)}
    for shape in grid_shapes:
        if _grid_size(shape) > n_procs:
            continue
        if space.distributions is not None:
            dists = list(space.distributions)
        else:
            dists = list(_placements(ndim, len(shape), kinds))
        for dist in dists:
            dist = dist if dist == KEEP else tuple(dist)
            for overlap in space.overlap:
                key = (_dist_key(dist), tuple(shape), overlap)
                if key in seen:
                    continue
                seen.add(key)
                candidates.append(
                    Candidate(len(candidates), dist, tuple(shape), overlap)
                )
    return candidates


def _dist_key(dist):
    if dist == KEEP:
        return KEEP
    return _spec_names(dist)


def _grid_size(shape) -> int:
    out = 1
    for s in shape:
        out *= s
    return out


# ----------------------------------------------------------------------
# Candidate compilation (clone the program onto a layout)
# ----------------------------------------------------------------------


def _substitute(expr, mapping):
    """Rebuild an expression tree with arrays swapped per ``mapping``."""
    if isinstance(expr, Ref):
        return Ref(mapping[id(expr.array)], expr.idx)
    if isinstance(expr, BinOp):
        return BinOp(expr.op,
                     _substitute(expr.left, mapping),
                     _substitute(expr.right, mapping))
    if isinstance(expr, Const):
        return expr
    raise ValidationError(  # pragma: no cover - expr grammar is closed
        f"cannot retarget expression node {type(expr).__name__}"
    )


def materialize(program, candidate: Candidate, cost: CostModel):
    """Compile ``program`` cloned onto ``candidate``'s layout.

    Array values are copied (each candidate starts from the live
    program's current state and runs on private storage), loops are
    rebuilt with the cloned arrays on the candidate grid, and the clone
    compiles into a fresh scratch Session -- predictions and frontier
    executions never touch the tuned program.  Returns the scratch
    Program, or None when the layout does not fit (marked infeasible).
    """
    from repro.session import Session, compile as _compile

    grid = ProcessorGrid(candidate.grid_shape)
    mapping: dict[int, DistArray] = {}
    for arr in _storage_arrays(program):
        specs = _map_specs(arr, candidate.dist, grid)
        if specs is None:
            return None
        clone = DistArray(arr.shape, grid, dist=specs,
                          dtype=arr.dtype, name=arr.name)
        clone.from_global(arr.to_global())
        mapping[id(arr)] = clone

    loops = []
    for loop in program.loops:
        on = loop.on
        if not isinstance(on, Owner):
            raise ValidationError(
                "tune() needs owner-computes loops; an OnProc clause pins "
                "ranks and leaves nothing to search"
            )
        body = [
            Assign(_substitute(st.lhs, mapping), _substitute(st.rhs, mapping))
            for st in loop.body
        ]
        loops.append(
            Doall(loop.vars, loop.ranges,
                  Owner(mapping[id(on.array)], on.idx), body, grid)
        )
    scratch = Session(Machine(n_procs=grid.size, cost=cost), cost=cost)
    return _compile(loops, session=scratch)


# ----------------------------------------------------------------------
# Prediction and measurement
# ----------------------------------------------------------------------


def predict_program(program, cost: CostModel, overlap: bool = False) -> float:
    """Predicted seconds for one sweep of ``program`` under ``cost``.

    A plain CostModel predicts simulated time -- per loop, the slowest
    rank's compute + comm (the estimator's critical path).  A
    :class:`~repro.machine.calibrate.CalibratedCostModel` predicts
    *host* seconds of the serial in-process executor, which runs every
    rank back to back: total flops, messages, and bytes are charged at
    the calibrated rates and each loop pays the calibrated per-sweep
    replay overhead.  Either way messages and bytes come off the frozen
    schedules -- exact, not modeled.
    """
    total = 0.0
    for est in program.loop_estimates():
        if isinstance(cost, CalibratedCostModel):
            total += (
                cost.sweep_overhead
                + cost.compute_time(est.total_flops())
                + cost.alpha * est.total_messages()
                + cost.beta * est.total_bytes()
            )
        else:
            total += est.predicted_time(cost, overlap=overlap)
    return total


def _sweep_totals(program) -> tuple[int, int]:
    msgs = bytes_ = 0
    for est in program.loop_estimates():
        msgs += est.total_messages()
        bytes_ += est.total_bytes()
    return msgs, bytes_


def _measure_sim(program, iters: int, overlap: bool):
    """Simulated-clock measurement: one run, exact trace accounting."""
    trace = program.run(iters=iters, overlap=overlap)
    return (
        trace.makespan() / iters,
        trace.message_count() / iters,
        trace.total_bytes() / iters,
    )


def _measure_host(program, iters: int, reps: int, overlap: bool, backend):
    """Host-clock measurement: best-of-``reps`` steady-state replays."""
    program.run(iters=iters, overlap=overlap, backend=backend)  # warm
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        program.run(iters=iters, overlap=overlap, backend=backend)
        best = min(best, time.perf_counter() - t0)
    return best / iters, None, None


# ----------------------------------------------------------------------
# The tuner
# ----------------------------------------------------------------------


def tune(
    program_or_loops,
    session=None,
    *,
    space: TuneSpace | None = None,
    budget: int | None = None,
    cost: CostModel | None = None,
    prune_factor: float = 2.0,
    iters: int = 2,
    reps: int = 2,
    backend=None,
) -> TuneResult:
    """Search layouts for a loop program; execute only the frontier.

    ``program_or_loops`` is a compiled :class:`~repro.session.Program`
    or anything :func:`repro.compile` accepts (compiled into
    ``session``, or a fresh one).  ``space`` defaults to the derived
    :class:`TuneSpace`; ``budget`` caps how many candidates execute
    (default: a quarter of the enumeration, the prune-then-execute
    contract; ``0`` ranks by prediction only).  ``cost`` defaults to
    the program Session's model -- pass a
    :class:`~repro.machine.calibrate.CalibratedCostModel` to rank and
    measure in real host seconds (``reps`` timed repetitions of
    ``iters`` sweeps each, on ``backend``, defaulting to the backend
    the calibration measured); a plain model ranks and measures on the
    simulated clock, where message/byte predictions are exact.  The
    seed layout is always executed alongside the frontier, so
    ``result.winner.measured <= result.seed.measured`` by construction.
    """
    from repro.session import Program, Session
    from repro.session import compile as _compile

    if isinstance(program_or_loops, Program):
        if session is not None and session is not program_or_loops.session:
            raise ValidationError(
                "pass either a compiled Program or loops + session, not a "
                "Program from a different session"
            )
        program = program_or_loops
    else:
        if session is None:
            session = Session()
        program = _compile(program_or_loops, session=session)
    program._require_loops("tune()")
    _refuse_sections(program)

    space = space if space is not None else TuneSpace()
    if cost is None:
        # a host calibration, when the session holds one, beats the
        # simulated model: the tuner's job is real seconds
        cost = getattr(program.session, "calibration", None)
    cost = cost if cost is not None else program.session.cost
    if cost is None:
        cost = CostModel.hypercube_1989()
    mode = "host" if isinstance(cost, CalibratedCostModel) else "sim"
    if backend is None and mode == "host" \
            and cost.backend_name == "multiprocessing":
        backend = "multiprocessing"

    machine = program.session.machine
    n_procs = machine.n_procs if machine is not None else program.grid.size

    candidates = enumerate_candidates(program, space, n_procs)
    for cand in candidates:
        scratch = materialize(program, cand, cost)
        if scratch is None:
            cand.feasible = False
            continue
        cand.program = scratch
        cand.predicted = predict_program(scratch, cost, overlap=cand.overlap)
        cand.pred_msgs, cand.pred_bytes = _sweep_totals(scratch)

    feasible = [c for c in candidates if c.feasible]
    if not feasible:
        raise ValidationError("no feasible layout candidates for this program")
    seed = candidates[0]
    if not seed.feasible:  # pragma: no cover - seed always materializes
        raise ValidationError("the program's own layout failed to materialize")

    if budget is None:
        budget = max(1, len(candidates) // 4)

    ranked = sorted(feasible, key=lambda c: (c.predicted, c.index))
    best_pred = ranked[0].predicted
    frontier = [
        c for c in ranked if c.predicted <= prune_factor * best_pred
    ][:budget]
    if budget > 0 and seed not in frontier:
        # the seed is the baseline every acceptance claim compares
        # against, so it always spends one slot of the budget
        if len(frontier) >= budget:
            frontier = frontier[:budget - 1]
        frontier.append(seed)

    for cand in frontier:
        if mode == "sim":
            cand.measured, cand.measured_msgs, cand.measured_bytes = \
                _measure_sim(cand.program, iters, cand.overlap)
        else:
            cand.measured, cand.measured_msgs, cand.measured_bytes = \
                _measure_host(cand.program, iters, reps, cand.overlap, backend)
            cand.program.session.close_backend()
        cand.executed = True
        if cand.predicted > 0:
            cand.error = (cand.measured - cand.predicted) / cand.predicted

    if frontier:
        winner = min(frontier, key=lambda c: (c.measured, c.index))
    else:
        winner = ranked[0]
    return TuneResult(
        program, candidates, frontier, winner, seed,
        mode=mode, cost=cost, iters=iters,
        prune_factor=prune_factor, budget=budget,
    )


# ----------------------------------------------------------------------
# The morph consumer: pick a grid for Session.morph("auto")
# ----------------------------------------------------------------------


def auto_grid(session, *, cost: CostModel | None = None,
              machine=None) -> tuple[ProcessorGrid, TuneResult]:
    """The grid :func:`repro.morph` should move ``session`` onto.

    Predict-only (``budget=0``): every live program is scored over all
    grids of the current rank count's shape rank that fit the machine,
    with each array keeping its own distribution kinds (morph preserves
    per-dimension specs, so that is exactly the reachable set); the
    grid whose summed predicted time is lowest wins.  Returns the grid
    and the first program's :class:`TuneResult` (stashed by
    ``Session.morph`` as ``session.last_tune``).
    """
    programs = _loop_programs(session)
    if not programs:
        raise ValidationError(
            "morph('auto') needs at least one compiled loop program"
        )
    mach = machine if machine is not None else session.machine
    if mach is None:
        mach = getattr(session.backend, "machine", None)
    if mach is None:
        raise ValidationError(
            "no machine: give the Session one or pass machine= to morph()"
        )
    if cost is None:
        cost = getattr(session, "calibration", None)
    cost = cost if cost is not None else session.cost
    with _all_locks(programs):
        ndim = len(programs[0].grid.shape)
        shapes = []
        for p in range(1, mach.n_procs + 1):
            shapes.extend(_factorizations(p, ndim))
        space = TuneSpace(
            distributions=(KEEP,), grid_shapes=tuple(shapes), overlap=(False,)
        )
        totals: dict[tuple, float] = {}
        first = None
        for prog in programs:
            result = tune(prog, space=space, budget=0, cost=cost)
            first = first if first is not None else result
            for c in result.candidates:
                if not c.feasible or c.seed:
                    continue
                totals[c.grid_shape] = totals.get(c.grid_shape, 0.0) \
                    + c.predicted
        if not totals:
            raise ValidationError(
                "morph('auto') found no feasible grid for these programs"
            )
        best = min(sorted(totals), key=lambda s: totals[s])
    return ProcessorGrid(best), first


__all__ = [
    "KEEP",
    "TuneSpace",
    "Candidate",
    "TuneResult",
    "tune",
    "auto_grid",
    "enumerate_candidates",
    "materialize",
    "predict_program",
]
