"""Program-as-a-service: pooled Sessions and a threaded serving front end.

The compile-once/run-forever contract makes compiled
:class:`~repro.session.Program` artifacts natural *services*: the
schedules are frozen and immutable, so the only obstacle to admitting
many concurrent ``run`` requests is the mutable launch state around
them.  This module supplies that serving layer:

* :class:`SessionPool` -- N :class:`~repro.session.Session` workers
  sharing **one** thread-safe
  :class:`~repro.compiler.commsched.ScheduleCache` and one
  :class:`~repro.compiler.schedule.PlanCache` (the same rewiring
  :func:`~repro.session.default_session` does), so a schedule compiled
  by any request replays for every later request on any session.
  Sessions hand out per-run state (run ids, trace history, mark
  folding); the shared caches hand out the frozen artifacts.
* :class:`Server` -- a thread-pool front end: ``submit`` returns a
  Future, ``run`` blocks; each request checks a Session out of the
  pool, executes ``program.run(..., session=that_session)``, and
  records latency.  Distinct Programs run concurrently; runs of one
  Program serialize on its :attr:`~repro.session.Program.lock` (its
  arrays are the mutable state).

**Thread-safety / immutability contract** (see "Serving" in
``docs/api.md``): frozen ``TransferSchedule``/``StepPlan`` artifacts
are immutable once published and may be replayed by any number of
threads; the caches' LRU/stats paths are locked; per-run decision state
is keyed by run id.  Pooled sessions default to ``marks="cheap"`` --
steady-state serving wants aggregate counters, not per-op mark objects.

>>> import numpy as np
>>> from repro import Machine
>>> from repro.serve import Server
>>> src = '''
... processors procs(2)
... real x(0:7) dist (block)
... real y(0:7) dist (block)
... doall (i) = [1, 6] on owner(y(i))
...   y(i) = x(i-1) + x(i+1)
... end doall
... '''
>>> with Server(machine=Machine(n_procs=2), threads=2) as srv:
...     prog = srv.compile(src)
...     trace = srv.run(prog, x=np.arange(8.0))   # synchronous request
...     fut = srv.submit(prog, x=np.zeros(8))     # asynchronous request
...     _ = fut.result()
...     srv.stats()["requests"]
2
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Callable, Sequence

from repro.compiler.commsched import ScheduleCache
from repro.compiler.schedule import PlanCache
from repro.lang.procs import ProcessorGrid
from repro.machine.simulator import Machine
from repro.machine.trace import Trace
from repro.session import BatchResult, Program, Session
from repro.session import compile as _compile
from repro.util.errors import MachineError, ServerOverloadError, ValidationError


class SessionPool:
    """A fixed pool of Sessions sharing one schedule and one plan cache.

    Parameters
    ----------
    size:
        Number of pooled Sessions (the concurrency the pool admits).
    machine, grid, backend:
        Defaults for every pooled Session, as in
        :class:`~repro.session.Session`.
    marks:
        Mark mode of pooled sessions; defaults to ``"cheap"`` (serving
        wants aggregate schedule counters, not per-op mark records).
    factory:
        Optional zero-argument callable building each Session instead
        (for custom cost models etc.); its cache/plans are still
        replaced by the shared ones.
    max_schedule_entries, max_plan_entries:
        Bounds of the *shared* caches.

    The shared caches are exactly what makes the pool a serving layer
    rather than N isolated workloads: a Program compiled through any
    pooled session freezes its schedules into :attr:`plans` /
    :attr:`cache`, and every subsequent request -- on whichever session
    the checkout hands it -- replays them.  Both caches are
    thread-safe; the frozen artifacts they hold are immutable.

    ``acquire``/``release`` (or the :meth:`session` context manager)
    check sessions out; ``acquire`` blocks when all are busy, so the
    pool also acts as an admission throttle.
    """

    def __init__(
        self,
        size: int,
        *,
        machine: Machine | None = None,
        grid: ProcessorGrid | None = None,
        backend=None,
        marks: str = "cheap",
        factory: Callable[[], Session] | None = None,
        max_schedule_entries: int = 256,
        max_plan_entries: int = 4096,
    ):
        if size < 1:
            raise ValidationError(f"SessionPool needs size >= 1, got {size}")
        #: the one ScheduleCache every pooled session consults
        self.cache = ScheduleCache(max_entries=max_schedule_entries)
        #: the one PlanCache every pooled session consults
        self.plans = PlanCache(max_entries=max_plan_entries)
        self.sessions: list[Session] = []
        for _ in range(size):
            s = (
                factory() if factory is not None
                else Session(machine, grid, backend=backend, marks=marks)
            )
            # the default_session() rewiring: replace the session's
            # private caches with the pool-shared ones
            s.cache = self.cache
            s.plans = self.plans
            self.sessions.append(s)
        self._free: list[Session] = list(self.sessions)
        self._cond = threading.Condition()

    @property
    def size(self) -> int:
        return len(self.sessions)

    # -- checkout ----------------------------------------------------------

    def acquire(self, timeout: float | None = None) -> Session:
        """Check a Session out; blocks (up to ``timeout``) when all busy."""
        with self._cond:
            if not self._cond.wait_for(lambda: self._free, timeout=timeout):
                raise TimeoutError(
                    f"no free session in pool of {self.size} "
                    f"after {timeout}s"
                )
            return self._free.pop()

    def release(self, session: Session) -> None:
        """Return a checked-out Session to the pool."""
        if session not in self.sessions:
            raise ValidationError("release() of a session not from this pool")
        with self._cond:
            if session in self._free:
                raise ValidationError("release() of a session not checked out")
            self._free.append(session)
            self._cond.notify()

    @contextmanager
    def session(self, timeout: float | None = None):
        """``with pool.session() as s:`` -- checkout with guaranteed return."""
        s = self.acquire(timeout=timeout)
        try:
            yield s
        finally:
            self.release(s)

    def free(self) -> int:
        """How many sessions are currently checked in (available)."""
        with self._cond:
            return len(self._free)

    # -- compile and introspect -------------------------------------------

    def compile(self, obj, *, grid: ProcessorGrid | None = None) -> Program:
        """Compile ``obj`` against the pool's shared caches.

        The Program is bound to one pooled session (its default when
        run directly), but its frozen analyses live in the *shared*
        plan cache -- any pooled session replays them.
        """
        with self.session() as s:
            return _compile(obj, session=s, grid=grid)

    def stats(self) -> dict:
        """Shared-cache accounting plus the per-session run counts."""
        return {
            "size": self.size,
            "runs": sum(s.runs for s in self.sessions),
            "schedules": self.cache.stats(),
            "directions": self.cache.direction_stats(),
            "plans": self.plans.kind_stats(),
        }

    def hit_rates(self) -> dict[str, float]:
        """Replay rates per direction/kind over the shared caches."""
        out: dict[str, float] = {}
        for source in (self.cache.by_direction, self.plans.by_kind):
            for name, v in source.items():
                total = v["hits"] + v["misses"]
                out[name] = v["hits"] / total if total else 0.0
        return out


#: retain at most this many per-request latencies for the percentiles
_MAX_LATENCIES = 4096


class Server:
    """Threaded front end admitting concurrent Program.run requests.

    Builds (or wraps) a :class:`SessionPool` and drives it from a
    thread pool: :meth:`submit` enqueues a request and returns a
    ``concurrent.futures.Future``; :meth:`run` is its blocking twin.
    Each request checks a session out of the pool for its duration, so
    the pool size bounds in-flight launches; it defaults to the thread
    count, which makes checkout deadlock-free by construction.

    ``submit_batch``/``run_batch`` serve whole ensembles per request
    through :meth:`Program.run_batch`.  :meth:`stats` reports request
    counts, p50/p99 latency, and the shared caches' hit rates.

    **Robustness** (see ``docs/resilience.md``): admission control
    bounds the request backlog at ``max_queue`` beyond the in-flight
    threads -- excess submits are *rejected* with
    :class:`~repro.util.errors.ServerOverloadError` (carrying a
    retry-after hint) rather than queued without bound, which is what
    keeps accepted requests' tail latency finite.  Per-request
    ``deadline=`` (seconds, measured from submit) covers queue wait +
    session checkout: a request whose deadline lapses before it holds a
    pooled session fails with ``TimeoutError`` without ever checking
    one out (an already-executing run is never killed mid-sweep).  A
    circuit breaker trips open after ``circuit_threshold`` consecutive
    backend (:class:`~repro.util.errors.MachineError`) failures,
    fast-rejects while open, and half-opens after ``circuit_cooldown``
    seconds to let one probe request through; :meth:`health` reports
    all of it.
    """

    def __init__(
        self,
        pool: SessionPool | None = None,
        *,
        machine: Machine | None = None,
        grid: ProcessorGrid | None = None,
        backend=None,
        threads: int = 4,
        marks: str = "cheap",
        pool_size: int | None = None,
        max_queue: int | None = None,
        default_deadline: float | None = None,
        circuit_threshold: int = 5,
        circuit_cooldown: float = 1.0,
    ):
        if threads < 1:
            raise ValidationError(f"Server needs threads >= 1, got {threads}")
        if pool is None:
            pool = SessionPool(
                pool_size if pool_size is not None else threads,
                machine=machine, grid=grid, backend=backend, marks=marks,
            )
        elif machine is not None or grid is not None or pool_size is not None:
            raise ValidationError(
                "pass machine/grid/pool_size when the Server builds its "
                "own pool, not together with an explicit one"
            )
        if max_queue is not None and max_queue < 0:
            raise ValidationError(f"max_queue must be >= 0, got {max_queue}")
        if circuit_threshold < 1:
            raise ValidationError("circuit_threshold must be >= 1")
        if circuit_cooldown <= 0:
            raise ValidationError("circuit_cooldown must be > 0")
        self.pool = pool
        self.threads = threads
        #: admitted-but-unstarted bound; in-flight capacity is
        #: ``threads + max_queue``
        self.max_queue = max_queue if max_queue is not None else 2 * threads
        self._capacity = threads + self.max_queue
        #: deadline applied when a submit names none (None = no deadline)
        self.default_deadline = default_deadline
        self.circuit_threshold = circuit_threshold
        self.circuit_cooldown = circuit_cooldown
        self._executor = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-serve"
        )
        self._lock = threading.Lock()
        self._requests = 0
        self._failures = 0
        self._rejected = 0
        self._inflight = 0
        self._latencies: list[float] = []
        self._closed = False
        # circuit breaker: "closed" (normal) -> "open" (fast-reject
        # until _circuit_open_until) -> "half-open" (one probe at a
        # time) -> "closed" on probe success / back to "open" on
        # failure.  All transitions happen under _lock.
        self._circuit = "closed"
        self._circuit_failures = 0
        self._circuit_open_until = 0.0
        self._probe_inflight = False

    # -- requests ----------------------------------------------------------

    def submit(
        self, program: Program, *args: Any,
        deadline: float | None = None, **kwargs: Any,
    ) -> Future:
        """Enqueue one ``program.run(*args, **kwargs)``; returns a Future.

        The request executes on a worker thread against a pooled
        session; the Future resolves to the run's
        :class:`~repro.machine.trace.Trace`.  May raise
        :class:`~repro.util.errors.ServerOverloadError` *at submit
        time* when the queue is full or the circuit breaker is open.
        ``deadline`` (seconds from now; default
        :attr:`default_deadline`) bounds queue wait + session checkout
        -- a lapsed request's Future fails with ``TimeoutError`` and
        never checks out a session.
        """
        return self._submit(program.run, args, kwargs, deadline)

    def submit_batch(
        self, program: Program, bindings: Sequence[dict],
        deadline: float | None = None, **kwargs: Any,
    ) -> Future:
        """Enqueue one batched ensemble request (``Program.run_batch``)."""
        return self._submit(program.run_batch, (bindings,), kwargs, deadline)

    def run(
        self, program: Program, *args: Any,
        deadline: float | None = None, **kwargs: Any,
    ) -> Trace:
        """Blocking request: ``submit`` and wait for the trace."""
        return self.submit(
            program, *args, deadline=deadline, **kwargs
        ).result()

    def run_batch(
        self, program: Program, bindings: Sequence[dict],
        deadline: float | None = None, **kwargs: Any,
    ) -> BatchResult:
        """Blocking batched request (``Program.run_batch``)."""
        return self.submit_batch(
            program, bindings, deadline=deadline, **kwargs
        ).result()

    def fetch(self, program: Program, *names: str) -> dict:
        """Snapshot result arrays of ``program`` under its run lock.

        Concurrent requests mutate a Program's arrays between runs;
        reading them racily can observe a half-written state.  This
        takes :attr:`Program.lock` (so no run is mid-flight) and
        returns ``{name: global numpy copy}``.
        """
        with program.lock:
            return {
                name: program.arrays[name].to_global().copy()
                for name in (names or sorted(program.arrays))
            }

    def _submit(self, call, args, kwargs, deadline=None) -> Future:
        if deadline is None:
            deadline = self.default_deadline
        with self._lock:
            if self._closed:
                raise ValidationError("Server is closed")
            probe = self._admit_locked()
            self._inflight += 1
        t_deadline = None if deadline is None else perf_counter() + deadline
        try:
            return self._executor.submit(
                self._serve, call, args, kwargs, t_deadline, probe
            )
        except BaseException as exc:
            with self._lock:
                self._inflight -= 1
                if probe:
                    self._probe_inflight = False
            if isinstance(exc, RuntimeError) and self._closed:
                # lost the race with close(): the executor shut down
                # between the admission check and the submit
                raise ValidationError("Server is closed") from exc
            raise

    def _admit_locked(self) -> bool:
        """Admission control + circuit breaker gate (holding _lock).

        Returns True when the admitted request is the circuit breaker's
        half-open probe -- its outcome (and only its outcome) decides
        whether the circuit closes or re-opens."""
        now = perf_counter()
        if self._circuit == "open":
            remaining = self._circuit_open_until - now
            if remaining > 0:
                self._rejected += 1
                raise ServerOverloadError(
                    "circuit breaker is open after repeated backend "
                    "failures; fast-rejecting until cooldown lapses",
                    retry_after=remaining,
                )
            self._circuit = "half-open"
            self._probe_inflight = False
        if self._circuit == "half-open" and self._probe_inflight:
            self._rejected += 1
            raise ServerOverloadError(
                "circuit breaker is half-open with the probe request "
                "still in flight",
                retry_after=self.circuit_cooldown,
            )
        if self._inflight >= self._capacity:
            self._rejected += 1
            raise ServerOverloadError(
                f"server overloaded: {self._inflight} requests in flight "
                f">= capacity {self._capacity} ({self.threads} threads + "
                f"{self.max_queue} queued)",
                retry_after=self._retry_after_locked(),
            )
        if self._circuit == "half-open":
            self._probe_inflight = True
            return True
        return False

    def _retry_after_locked(self) -> float:
        """Queue-drain estimate: p50 latency x queue depth / threads."""
        lats = self._latencies
        p50 = sorted(lats)[len(lats) // 2] if lats else 0.05
        depth = max(1, self._inflight - self.threads + 1)
        return max(0.01, p50 * depth / self.threads)

    def _circuit_note_locked(self, ok: bool, exc=None, *,
                             probe: bool = False) -> None:
        """Feed one request outcome to the circuit breaker (holding _lock).

        Only backend failures (:class:`MachineError`) count toward
        tripping: caller errors (bad bindings, closed pools) and
        deadline expiries say nothing about backend health.  ``probe``
        marks the half-open probe request: while the circuit is open or
        half-open, only the probe's outcome moves the state -- a
        straggler admitted before the trip that completes during the
        cooldown must not close (or re-trip) the circuit early.
        """
        if probe:
            self._probe_inflight = False
        if ok:
            if probe or self._circuit == "closed":
                self._circuit = "closed"
                self._circuit_failures = 0
            return
        if not isinstance(exc, MachineError):
            # inconclusive: a finished probe (cleared above) lets the
            # next admit send another one
            return
        self._circuit_failures += 1
        if probe or (self._circuit == "closed"
                     and self._circuit_failures >= self.circuit_threshold):
            self._circuit = "open"
            self._circuit_open_until = perf_counter() + self.circuit_cooldown
            self._circuit_failures = 0

    def _serve(self, call, args, kwargs, t_deadline=None, probe=False):
        t0 = perf_counter()
        try:
            if t_deadline is not None and t0 >= t_deadline:
                raise TimeoutError(
                    "request deadline expired while queued; the pooled "
                    "session was never checked out"
                )
            timeout = (
                None if t_deadline is None
                else max(1e-3, t_deadline - perf_counter())
            )
            with self.pool.session(timeout=timeout) as s:
                out = call(*args, session=s, **kwargs)
        except BaseException as exc:
            with self._lock:
                self._requests += 1
                self._failures += 1
                self._inflight -= 1
                self._circuit_note_locked(False, exc, probe=probe)
            raise
        dt = perf_counter() - t0
        with self._lock:
            self._requests += 1
            self._inflight -= 1
            self._latencies.append(dt)
            if len(self._latencies) > _MAX_LATENCIES:
                del self._latencies[: -_MAX_LATENCIES]
            self._circuit_note_locked(True, probe=probe)
        return out

    # -- elasticity --------------------------------------------------------

    def morph(
        self, program: Program, new_grid: "ProcessorGrid | str",
    ) -> Trace | None:
        """Morph ``program``'s session onto ``new_grid`` with the pool
        quiesced.

        Checks out *every* pooled session first (so no request is
        mid-flight anywhere -- ``acquire`` blocks until in-flight
        requests drain), shuts their multiprocessing worker pools down
        (shared-memory blocks return to private storage before layouts
        change), then runs :meth:`repro.Session.morph` on the program's
        own session.  ``new_grid="auto"`` asks the autotuner for the
        target grid exactly as :meth:`repro.Session.morph` does (the
        chosen grid's TuneResult lands on that session's
        ``last_tune``).  The pool is released afterwards; subsequent
        requests replay on the new grid, and worker pools respawn
        lazily.  Returns the repartition trace (``None`` when nothing
        moved).
        """
        if self._closed:
            raise ValidationError("Server is closed")
        held = [self.pool.acquire() for _ in range(self.pool.size)]
        try:
            for s in held:
                s.close_backend()
            return program.session.morph(new_grid)
        finally:
            for s in held:
                self.pool.release(s)

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Request accounting: counts, latency percentiles, cache rates.

        ``latency`` holds seconds over (up to) the last 4096 completed
        requests -- the same fields ``BENCH_serve.json`` records.
        """
        with self._lock:
            lats = sorted(self._latencies)
            requests, failures = self._requests, self._failures
            rejected, inflight = self._rejected, self._inflight
        return {
            "requests": requests,
            "failures": failures,
            "rejected": rejected,
            "inflight": inflight,
            "threads": self.threads,
            "pool_size": self.pool.size,
            "latency": {
                "p50": _percentile(lats, 0.50),
                "p99": _percentile(lats, 0.99),
                "mean": (sum(lats) / len(lats)) if lats else 0.0,
            },
            "hit_rates": self.pool.hit_rates(),
        }

    def health(self) -> dict:
        """Liveness snapshot: admission state, circuit state, backlog.

        ``status`` is ``"ok"``, ``"overloaded"`` (at capacity: the next
        submit would be rejected), ``"circuit-open"`` (fast-rejecting
        until cooldown), or ``"closed"``.  ``queued`` counts admitted
        requests beyond the executing threads; ``pool_free`` is how
        many sessions are checked in.
        """
        now = perf_counter()
        with self._lock:
            circuit = self._circuit
            if circuit == "open" and now >= self._circuit_open_until:
                # cooldown lapsed; the next submit performs the actual
                # transition, report what it will find
                circuit = "half-open"
            inflight = self._inflight
            closed = self._closed
            requests, failures = self._requests, self._failures
            rejected = self._rejected
        if closed:
            status = "closed"
        elif circuit == "open":
            status = "circuit-open"
        elif inflight >= self._capacity:
            status = "overloaded"
        else:
            status = "ok"
        return {
            "status": status,
            "closed": closed,
            "circuit": circuit,
            "inflight": inflight,
            "queued": max(0, inflight - self.threads),
            "capacity": self._capacity,
            "threads": self.threads,
            "pool_free": self.pool.free(),
            "requests": requests,
            "failures": failures,
            "rejected": rejected,
        }

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drain outstanding requests and shut the worker threads down.

        Idempotent: the first call flips the closed flag (so new
        submits fail fast with :class:`ValidationError`) and waits for
        admitted requests to drain; later calls return immediately
        instead of re-waiting on the shut executor.  Never deadlocks:
        the flag is flipped *before* the drain, outside any request's
        lock.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # convenience: compile straight against the pool
    def compile(self, obj, *, grid: ProcessorGrid | None = None) -> Program:
        """Compile ``obj`` against the pool's shared caches."""
        return self.pool.compile(obj, grid=grid)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    i = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values))))
    return sorted_values[i]
