"""Program-as-a-service: pooled Sessions and a threaded serving front end.

The compile-once/run-forever contract makes compiled
:class:`~repro.session.Program` artifacts natural *services*: the
schedules are frozen and immutable, so the only obstacle to admitting
many concurrent ``run`` requests is the mutable launch state around
them.  This module supplies that serving layer:

* :class:`SessionPool` -- N :class:`~repro.session.Session` workers
  sharing **one** thread-safe
  :class:`~repro.compiler.commsched.ScheduleCache` and one
  :class:`~repro.compiler.schedule.PlanCache` (the same rewiring
  :func:`~repro.session.default_session` does), so a schedule compiled
  by any request replays for every later request on any session.
  Sessions hand out per-run state (run ids, trace history, mark
  folding); the shared caches hand out the frozen artifacts.
* :class:`Server` -- a thread-pool front end: ``submit`` returns a
  Future, ``run`` blocks; each request checks a Session out of the
  pool, executes ``program.run(..., session=that_session)``, and
  records latency.  Distinct Programs run concurrently; runs of one
  Program serialize on its :attr:`~repro.session.Program.lock` (its
  arrays are the mutable state).

**Thread-safety / immutability contract** (see "Serving" in
``docs/api.md``): frozen ``TransferSchedule``/``StepPlan`` artifacts
are immutable once published and may be replayed by any number of
threads; the caches' LRU/stats paths are locked; per-run decision state
is keyed by run id.  Pooled sessions default to ``marks="cheap"`` --
steady-state serving wants aggregate counters, not per-op mark objects.

>>> import numpy as np
>>> from repro import Machine
>>> from repro.serve import Server
>>> src = '''
... processors procs(2)
... real x(0:7) dist (block)
... real y(0:7) dist (block)
... doall (i) = [1, 6] on owner(y(i))
...   y(i) = x(i-1) + x(i+1)
... end doall
... '''
>>> with Server(machine=Machine(n_procs=2), threads=2) as srv:
...     prog = srv.compile(src)
...     trace = srv.run(prog, x=np.arange(8.0))   # synchronous request
...     fut = srv.submit(prog, x=np.zeros(8))     # asynchronous request
...     _ = fut.result()
...     srv.stats()["requests"]
2
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Callable, Sequence

from repro.compiler.commsched import ScheduleCache
from repro.compiler.schedule import PlanCache
from repro.lang.procs import ProcessorGrid
from repro.machine.simulator import Machine
from repro.machine.trace import Trace
from repro.session import BatchResult, Program, Session
from repro.session import compile as _compile
from repro.util.errors import ValidationError


class SessionPool:
    """A fixed pool of Sessions sharing one schedule and one plan cache.

    Parameters
    ----------
    size:
        Number of pooled Sessions (the concurrency the pool admits).
    machine, grid, backend:
        Defaults for every pooled Session, as in
        :class:`~repro.session.Session`.
    marks:
        Mark mode of pooled sessions; defaults to ``"cheap"`` (serving
        wants aggregate schedule counters, not per-op mark records).
    factory:
        Optional zero-argument callable building each Session instead
        (for custom cost models etc.); its cache/plans are still
        replaced by the shared ones.
    max_schedule_entries, max_plan_entries:
        Bounds of the *shared* caches.

    The shared caches are exactly what makes the pool a serving layer
    rather than N isolated workloads: a Program compiled through any
    pooled session freezes its schedules into :attr:`plans` /
    :attr:`cache`, and every subsequent request -- on whichever session
    the checkout hands it -- replays them.  Both caches are
    thread-safe; the frozen artifacts they hold are immutable.

    ``acquire``/``release`` (or the :meth:`session` context manager)
    check sessions out; ``acquire`` blocks when all are busy, so the
    pool also acts as an admission throttle.
    """

    def __init__(
        self,
        size: int,
        *,
        machine: Machine | None = None,
        grid: ProcessorGrid | None = None,
        backend=None,
        marks: str = "cheap",
        factory: Callable[[], Session] | None = None,
        max_schedule_entries: int = 256,
        max_plan_entries: int = 4096,
    ):
        if size < 1:
            raise ValidationError(f"SessionPool needs size >= 1, got {size}")
        #: the one ScheduleCache every pooled session consults
        self.cache = ScheduleCache(max_entries=max_schedule_entries)
        #: the one PlanCache every pooled session consults
        self.plans = PlanCache(max_entries=max_plan_entries)
        self.sessions: list[Session] = []
        for _ in range(size):
            s = (
                factory() if factory is not None
                else Session(machine, grid, backend=backend, marks=marks)
            )
            # the default_session() rewiring: replace the session's
            # private caches with the pool-shared ones
            s.cache = self.cache
            s.plans = self.plans
            self.sessions.append(s)
        self._free: list[Session] = list(self.sessions)
        self._cond = threading.Condition()

    @property
    def size(self) -> int:
        return len(self.sessions)

    # -- checkout ----------------------------------------------------------

    def acquire(self, timeout: float | None = None) -> Session:
        """Check a Session out; blocks (up to ``timeout``) when all busy."""
        with self._cond:
            if not self._cond.wait_for(lambda: self._free, timeout=timeout):
                raise TimeoutError(
                    f"no free session in pool of {self.size} "
                    f"after {timeout}s"
                )
            return self._free.pop()

    def release(self, session: Session) -> None:
        """Return a checked-out Session to the pool."""
        if session not in self.sessions:
            raise ValidationError("release() of a session not from this pool")
        with self._cond:
            if session in self._free:
                raise ValidationError("release() of a session not checked out")
            self._free.append(session)
            self._cond.notify()

    @contextmanager
    def session(self, timeout: float | None = None):
        """``with pool.session() as s:`` -- checkout with guaranteed return."""
        s = self.acquire(timeout=timeout)
        try:
            yield s
        finally:
            self.release(s)

    # -- compile and introspect -------------------------------------------

    def compile(self, obj, *, grid: ProcessorGrid | None = None) -> Program:
        """Compile ``obj`` against the pool's shared caches.

        The Program is bound to one pooled session (its default when
        run directly), but its frozen analyses live in the *shared*
        plan cache -- any pooled session replays them.
        """
        with self.session() as s:
            return _compile(obj, session=s, grid=grid)

    def stats(self) -> dict:
        """Shared-cache accounting plus the per-session run counts."""
        return {
            "size": self.size,
            "runs": sum(s.runs for s in self.sessions),
            "schedules": self.cache.stats(),
            "directions": self.cache.direction_stats(),
            "plans": self.plans.kind_stats(),
        }

    def hit_rates(self) -> dict[str, float]:
        """Replay rates per direction/kind over the shared caches."""
        out: dict[str, float] = {}
        for source in (self.cache.by_direction, self.plans.by_kind):
            for name, v in source.items():
                total = v["hits"] + v["misses"]
                out[name] = v["hits"] / total if total else 0.0
        return out


#: retain at most this many per-request latencies for the percentiles
_MAX_LATENCIES = 4096


class Server:
    """Threaded front end admitting concurrent Program.run requests.

    Builds (or wraps) a :class:`SessionPool` and drives it from a
    thread pool: :meth:`submit` enqueues a request and returns a
    ``concurrent.futures.Future``; :meth:`run` is its blocking twin.
    Each request checks a session out of the pool for its duration, so
    the pool size bounds in-flight launches; it defaults to the thread
    count, which makes checkout deadlock-free by construction.

    ``submit_batch``/``run_batch`` serve whole ensembles per request
    through :meth:`Program.run_batch`.  :meth:`stats` reports request
    counts, p50/p99 latency, and the shared caches' hit rates.
    """

    def __init__(
        self,
        pool: SessionPool | None = None,
        *,
        machine: Machine | None = None,
        grid: ProcessorGrid | None = None,
        backend=None,
        threads: int = 4,
        marks: str = "cheap",
        pool_size: int | None = None,
    ):
        if threads < 1:
            raise ValidationError(f"Server needs threads >= 1, got {threads}")
        if pool is None:
            pool = SessionPool(
                pool_size if pool_size is not None else threads,
                machine=machine, grid=grid, backend=backend, marks=marks,
            )
        elif machine is not None or grid is not None or pool_size is not None:
            raise ValidationError(
                "pass machine/grid/pool_size when the Server builds its "
                "own pool, not together with an explicit one"
            )
        self.pool = pool
        self.threads = threads
        self._executor = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-serve"
        )
        self._lock = threading.Lock()
        self._requests = 0
        self._failures = 0
        self._latencies: list[float] = []
        self._closed = False

    # -- requests ----------------------------------------------------------

    def submit(self, program: Program, *args: Any, **kwargs: Any) -> Future:
        """Enqueue one ``program.run(*args, **kwargs)``; returns a Future.

        The request executes on a worker thread against a pooled
        session; the Future resolves to the run's
        :class:`~repro.machine.trace.Trace`.
        """
        return self._submit(program.run, args, kwargs)

    def submit_batch(
        self, program: Program, bindings: Sequence[dict], **kwargs: Any
    ) -> Future:
        """Enqueue one batched ensemble request (``Program.run_batch``)."""
        return self._submit(program.run_batch, (bindings,), kwargs)

    def run(self, program: Program, *args: Any, **kwargs: Any) -> Trace:
        """Blocking request: ``submit`` and wait for the trace."""
        return self.submit(program, *args, **kwargs).result()

    def run_batch(
        self, program: Program, bindings: Sequence[dict], **kwargs: Any
    ) -> BatchResult:
        """Blocking batched request (``Program.run_batch``)."""
        return self.submit_batch(program, bindings, **kwargs).result()

    def fetch(self, program: Program, *names: str) -> dict:
        """Snapshot result arrays of ``program`` under its run lock.

        Concurrent requests mutate a Program's arrays between runs;
        reading them racily can observe a half-written state.  This
        takes :attr:`Program.lock` (so no run is mid-flight) and
        returns ``{name: global numpy copy}``.
        """
        with program.lock:
            return {
                name: program.arrays[name].to_global().copy()
                for name in (names or sorted(program.arrays))
            }

    def _submit(self, call, args, kwargs) -> Future:
        if self._closed:
            raise ValidationError("Server is closed")
        return self._executor.submit(self._serve, call, args, kwargs)

    def _serve(self, call, args, kwargs):
        t0 = perf_counter()
        try:
            with self.pool.session() as s:
                out = call(*args, session=s, **kwargs)
        except BaseException:
            with self._lock:
                self._requests += 1
                self._failures += 1
            raise
        dt = perf_counter() - t0
        with self._lock:
            self._requests += 1
            self._latencies.append(dt)
            if len(self._latencies) > _MAX_LATENCIES:
                del self._latencies[: -_MAX_LATENCIES]
        return out

    # -- elasticity --------------------------------------------------------

    def morph(
        self, program: Program, new_grid: "ProcessorGrid | str",
    ) -> Trace | None:
        """Morph ``program``'s session onto ``new_grid`` with the pool
        quiesced.

        Checks out *every* pooled session first (so no request is
        mid-flight anywhere -- ``acquire`` blocks until in-flight
        requests drain), shuts their multiprocessing worker pools down
        (shared-memory blocks return to private storage before layouts
        change), then runs :meth:`repro.Session.morph` on the program's
        own session.  ``new_grid="auto"`` asks the autotuner for the
        target grid exactly as :meth:`repro.Session.morph` does (the
        chosen grid's TuneResult lands on that session's
        ``last_tune``).  The pool is released afterwards; subsequent
        requests replay on the new grid, and worker pools respawn
        lazily.  Returns the repartition trace (``None`` when nothing
        moved).
        """
        if self._closed:
            raise ValidationError("Server is closed")
        held = [self.pool.acquire() for _ in range(self.pool.size)]
        try:
            for s in held:
                s.close_backend()
            return program.session.morph(new_grid)
        finally:
            for s in held:
                self.pool.release(s)

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Request accounting: counts, latency percentiles, cache rates.

        ``latency`` holds seconds over (up to) the last 4096 completed
        requests -- the same fields ``BENCH_serve.json`` records.
        """
        with self._lock:
            lats = sorted(self._latencies)
            requests, failures = self._requests, self._failures
        return {
            "requests": requests,
            "failures": failures,
            "threads": self.threads,
            "pool_size": self.pool.size,
            "latency": {
                "p50": _percentile(lats, 0.50),
                "p99": _percentile(lats, 0.99),
                "mean": (sum(lats) / len(lats)) if lats else 0.0,
            },
            "hit_rates": self.pool.hit_rates(),
        }

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drain outstanding requests and shut the worker threads down."""
        self._closed = True
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # convenience: compile straight against the pool
    def compile(self, obj, *, grid: ProcessorGrid | None = None) -> Program:
        """Compile ``obj`` against the pool's shared caches."""
        return self.pool.compile(obj, grid=grid)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    i = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values))))
    return sorted_values[i]
