"""Self-healing runs: supervised execution with checkpointed recovery.

PR 8 built the recovery *mechanism* -- checkpoint/restore/morph survive
killed ranks bit-identically -- but driving it was a hand-written
drill.  This module turns the drill into *policy*: a
:class:`Supervisor` wraps ``Program.run``/``run_batch`` so that a
``MachineError`` from a dead multiprocessing rank is handled, not
fatal:

1. the session's worker pools are closed (the failed pool already is;
   this also quiesces siblings, un-adopting shared memory);
2. the latest mid-run checkpoint *taken by this supervised call* --
   every ``checkpoint_every`` sweeps, as an incremental delta chained
   against the previous boundary's snapshot -- is restored, scoped to
   the failed program only (never a stale checkpoint left over from an
   earlier ``checkpoint_every`` run);
3. the run resumes from the checkpoint's sweep cursor (never sweep 0)
   after an exponential backoff with jitter, under a bounded retry
   budget;
4. after ``degrade_after`` *consecutive* failures the remaining sweeps
   execute on the simulator backend -- degraded but correct, since the
   simulator is the reference semantics -- with a loud
   :class:`RuntimeWarning`;
5. every recovery decision lands in a :class:`RecoveryLog` surfaced via
   ``Session.stats()["recovery"]``.

Because restores are value-exact and the split-iters invariant holds
(``run(iters=a)`` then ``run(iters=b)`` equals ``run(iters=a+b)``), a
supervised run that survived any number of faults produces results
bit-identical to an uninterrupted one -- the property
``benchmarks/bench_resilience.py`` and ``tests/supervise/`` gate.

>>> from repro.supervise import SupervisorPolicy
>>> p = SupervisorPolicy(max_retries=4, backoff_base=0.1, jitter=0.0)
>>> [round(p.backoff(n), 3) for n in range(1, 5)]
[0.1, 0.2, 0.4, 0.8]
"""

from __future__ import annotations

import random
import time
import warnings
from typing import Any, Callable

from repro.elastic import checkpoint as _checkpoint
from repro.elastic import restore as _restore
from repro.util.errors import MachineError, ValidationError

#: RecoveryLog keeps at most this many event records (counters are
#: exact forever; the event list is a bounded ring like Session.history)
_MAX_EVENTS = 256


class SupervisorPolicy:
    """Knobs of the recovery loop; defaults favor fast, bounded retries.

    ``max_retries`` bounds the *total* recovery attempts one
    ``Supervisor.run``/``run_batch`` call may spend; the failure that
    exceeds it propagates.  Backoff before retry ``n`` (1-based,
    counting *consecutive* failures) is
    ``min(backoff_max, backoff_base * backoff_factor**(n-1))``,
    stretched by a uniform random fraction up to ``jitter`` (seeded via
    ``seed`` for reproducible drills).  ``degrade_after`` consecutive
    failures switch the remaining work to the simulator backend;
    ``checkpoint_every`` is the default sweep interval between
    incremental checkpoints.  ``sleep`` is the clock hook (tests stub
    it to run drills instantly).
    """

    def __init__(
        self,
        *,
        max_retries: int = 3,
        backoff_base: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max: float = 2.0,
        jitter: float = 0.25,
        degrade_after: int = 2,
        checkpoint_every: int = 1,
        seed: int | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if max_retries < 0:
            raise ValidationError("max_retries must be >= 0")
        if degrade_after < 1:
            raise ValidationError("degrade_after must be >= 1")
        if checkpoint_every < 1:
            raise ValidationError("checkpoint_every must be >= 1")
        if not 0.0 <= jitter:
            raise ValidationError("jitter must be >= 0")
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.jitter = jitter
        self.degrade_after = degrade_after
        self.checkpoint_every = checkpoint_every
        self.sleep = sleep
        self._rng = random.Random(seed)

    def backoff(self, consecutive: int) -> float:
        """Jittered backoff (seconds) before the ``consecutive``-th
        consecutive retry (1-based)."""
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, consecutive - 1),
        )
        return base * (1.0 + self.jitter * self._rng.random())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SupervisorPolicy(max_retries={self.max_retries}, "
            f"backoff={self.backoff_base}*{self.backoff_factor}^n"
            f"<={self.backoff_max}, jitter={self.jitter}, "
            f"degrade_after={self.degrade_after}, "
            f"checkpoint_every={self.checkpoint_every})"
        )


class RecoveryEvent:
    """One recovery decision: what failed, what the Supervisor did."""

    __slots__ = ("cause", "ranks", "sweep", "backoff_s", "attempt", "action",
                 "backend")

    def __init__(self, *, cause: str, ranks: tuple, sweep: int,
                 backoff_s: float, attempt: int, action: str, backend: str):
        #: first line of the triggering error
        self.cause = cause
        #: failed ranks reported by the backend (empty if unknown)
        self.ranks = tuple(ranks)
        #: sweep cursor the retry resumed from (0 = run start)
        self.sweep = int(sweep)
        #: seconds slept before the retry
        self.backoff_s = float(backoff_s)
        #: 1-based retry counter within the supervised call
        self.attempt = int(attempt)
        #: ``"retry"``, ``"degrade"``, or ``"gave-up"``
        self.action = action
        #: backend the retry ran on (after any degradation)
        self.backend = backend

    def as_dict(self) -> dict:
        return {s: getattr(self, s) for s in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RecoveryEvent({self.action} attempt={self.attempt} "
            f"sweep={self.sweep} ranks={self.ranks} "
            f"backoff={self.backoff_s:.3f}s)"
        )


class RecoveryLog:
    """Bounded record of every recovery event, plus exact counters.

    Attached to ``Session.recovery`` by the :class:`Supervisor` and
    summarized in ``Session.stats()["recovery"]``.  ``events`` keeps
    the last :data:`_MAX_EVENTS` :class:`RecoveryEvent` records;
    ``retries``/``degradations``/``gave_up`` count forever.
    """

    def __init__(self):
        self.events: list[RecoveryEvent] = []
        self.retries = 0
        self.degradations = 0
        self.gave_up = 0

    def record(self, event: RecoveryEvent) -> RecoveryEvent:
        self.events.append(event)
        if len(self.events) > _MAX_EVENTS:
            del self.events[:-_MAX_EVENTS]
        if event.action == "gave-up":
            self.gave_up += 1
        else:
            self.retries += 1
            if event.action == "degrade":
                self.degradations += 1
        return event

    def summary(self) -> dict:
        """Counters + the most recent event, for ``Session.stats()``."""
        return {
            "events": len(self.events),
            "retries": self.retries,
            "degradations": self.degradations,
            "gave_up": self.gave_up,
            "last": self.events[-1].as_dict() if self.events else None,
        }

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RecoveryLog(retries={self.retries}, "
            f"degradations={self.degradations}, gave_up={self.gave_up})"
        )


def _cause_of(exc: BaseException) -> str:
    return str(exc).splitlines()[0] if str(exc) else type(exc).__name__


class Supervisor:
    """Self-healing wrapper around a Session's program runs.

    ``Supervisor(session)`` adopts the session: its
    :class:`RecoveryLog` lands on ``session.recovery`` (visible in
    ``session.stats()``), and :meth:`run`/:meth:`run_batch` execute
    programs with checkpointed retry under the
    :class:`SupervisorPolicy`.  Degradation to the simulator backend is
    sticky per Supervisor -- once a pool has proven unreliable enough
    to degrade, later calls stay on the reference backend until
    :meth:`reset_degradation`.
    """

    def __init__(self, session, policy: SupervisorPolicy | None = None):
        self.session = session
        self.policy = policy if policy is not None else SupervisorPolicy()
        self.log = RecoveryLog()
        session.recovery = self.log
        self._degraded = False

    @property
    def degraded(self) -> bool:
        """True once recovery has fallen back to the simulator backend."""
        return self._degraded

    def reset_degradation(self) -> None:
        """Allow the originally requested backend again."""
        self._degraded = False

    # -- supervised execution ----------------------------------------------

    def run(
        self,
        program,
        *,
        iters: int = 1,
        checkpoint_every: int | None = None,
        backend=None,
        overlap: bool = False,
        marks: str | None = None,
        bindings: dict | None = None,
        **kw_bindings: Any,
    ):
        """Run ``program`` to completion, healing backend failures.

        Semantics of a successful call are exactly
        ``program.run(iters=iters, backend=backend, **bindings)`` --
        bit-identical results, since restores are value-exact and the
        split-iters invariant holds -- except the sweeps execute in
        ``checkpoint_every``-sized legs (default from the policy) with
        an incremental checkpoint after each, and a ``MachineError``
        triggers restore + backoff + retry from the latest checkpoint
        instead of propagating.  Once the retry budget is exhausted the
        final error propagates (after a ``gave-up`` log entry); the
        arrays then hold the restored last-checkpoint state, so a
        caller with its own policy can still resume by hand.

        Returns the final leg's trace.
        """
        program._require_loops("Supervisor.run()")
        policy = self.policy
        k = checkpoint_every if checkpoint_every is not None else policy.checkpoint_every
        if k < 1:
            raise ValidationError(f"checkpoint_every must be >= 1, got {k}")
        if iters < 1:
            raise ValidationError(f"iters must be >= 1, got {iters}")
        sess = self.session
        eff_backend = "simulator" if self._degraded else backend

        merged = dict(bindings or {})
        merged.update(kw_bindings)
        with program.lock:
            program._apply_bindings(merged)
            base = _checkpoint(sess, sweep=0, programs=[program])
            program.ckpt_base = base
            program.ckpt_latest = base
            # the hydrated latest snapshot: what a recovery restores and
            # what the next boundary's delta diffs against (chained, so
            # an array that stops changing elides again)
            resume = base
            trace, done = None, 0
            retries = consecutive = 0
            while done < iters:
                leg = min(k, iters - done)
                try:
                    trace = program.run(
                        iters=leg, overlap=overlap, marks=marks,
                        backend=eff_backend,
                    )
                except MachineError as exc:
                    eff_backend, retries, consecutive = self._recover(
                        exc, program, resume, sweep=done, retries=retries,
                        consecutive=consecutive, backend=eff_backend,
                    )
                    continue
                consecutive = 0
                done += leg
                inc = _checkpoint(
                    sess, sweep=done, base=resume, programs=[program]
                )
                program.ckpt_base = resume
                program.ckpt_latest = inc
                resume = inc.merged(resume)
            return trace

    def run_batch(self, program, bindings, **kwargs):
        """Supervised :meth:`repro.session.Program.run_batch`.

        Batched runs execute on the simulator backend and have no sweep
        legs to resume (each member re-binds from the pre-call state),
        so supervision here is simpler: snapshot the pre-call state,
        and on ``MachineError`` restore it, back off, and retry the
        whole batch under the same retry budget.
        """
        program._require_loops("Supervisor.run_batch()")
        sess = self.session
        with program.lock:
            base = _checkpoint(sess, sweep=0, programs=[program])
            retries = consecutive = 0
            while True:
                try:
                    return program.run_batch(bindings, **kwargs)
                except MachineError as exc:
                    _, retries, consecutive = self._recover(
                        exc, program, base, sweep=0, retries=retries,
                        consecutive=consecutive, backend="simulator",
                        can_degrade=False,
                    )

    # -- the recovery step --------------------------------------------------

    def _recover(
        self, exc, program, resume, *, sweep, retries, consecutive, backend,
        can_degrade=True,
    ):
        """Handle one ``MachineError``: restore, back off, maybe degrade.

        ``resume`` is the checkpoint the caller intends the retry to
        resume from -- the supervised call's own latest (hydrated)
        snapshot, passed explicitly so recovery can never pick up a
        stale ``program.latest_checkpoint()`` left behind by an earlier
        checkpointed run.  Returns ``(backend, retries, consecutive)``
        for the next attempt, or re-raises ``exc`` once the retry
        budget is spent.
        """
        policy = self.policy
        sess = self.session
        retries += 1
        consecutive += 1
        cause = _cause_of(exc)
        ranks = tuple(getattr(exc, "failed_ranks", ()))
        # quiesce: the failed pool already closed itself; this closes
        # sibling pools and un-adopts shared memory so the restore
        # writes land in private storage
        sess.close_backend()
        _restore(sess, resume, programs=[program], counters=False)
        if retries > policy.max_retries:
            self.log.record(RecoveryEvent(
                cause=cause, ranks=ranks, sweep=sweep, backoff_s=0.0,
                attempt=retries, action="gave-up", backend=str(backend),
            ))
            raise exc
        action = "retry"
        if can_degrade and consecutive >= policy.degrade_after \
                and backend != "simulator":
            backend = "simulator"
            self._degraded = True
            action = "degrade"
            warnings.warn(
                f"Supervisor: {consecutive} consecutive backend failures "
                f"(last: {cause}); degrading the remaining sweeps to the "
                "simulator backend -- results stay correct, wall-clock "
                "parallelism is lost. Investigate the worker pool.",
                RuntimeWarning,
                stacklevel=4,
            )
        backoff_s = policy.backoff(consecutive)
        self.log.record(RecoveryEvent(
            cause=cause, ranks=ranks, sweep=sweep, backoff_s=backoff_s,
            attempt=retries, action=action, backend=str(backend),
        ))
        policy.sleep(backoff_s)
        return backend, retries, consecutive

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Supervisor(degraded={self._degraded}, log={self.log!r})"
        )


__all__ = ["Supervisor", "SupervisorPolicy", "RecoveryLog", "RecoveryEvent"]
