"""Legacy setup shim: the offline environment lacks the ``wheel`` package,
so PEP 660 editable installs fail; this keeps ``pip install -e .`` working
through setuptools' develop path."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
