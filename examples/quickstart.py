#!/usr/bin/env python
"""Quickstart: the paper's Jacobi example, three ways.

Runs Listing 1 (sequential), Listing 2 (hand-written message passing)
and Listing 3 (KF1: distributed arrays + doall, compiler-generated
communication) on the same Poisson problem and shows that they produce
identical iterates, then prints the simulated machine's view of the
KF1 run: makespan, utilization, the schedule-replay summary (the doall
compiles its communication once and replays it on all later sweeps --
see docs/schedule-lifecycle.md), and the message pattern the compiler
derived from the distribution clause alone.

Run:  PYTHONPATH=src python examples/quickstart.py
"""

import numpy as np

from repro import CostModel, Machine, ProcessorGrid
from repro.baselines import jacobi_message_passing, jacobi_sequential
from repro.tensor.jacobi import jacobi_kf1


def main():
    n = 32          # grid is (n+1) x (n+1)
    iters = 20
    p = 2           # 2 x 2 processor array

    # A Poisson right-hand side (scaled so the fixed point is tame).
    rng = np.random.default_rng(42)
    f = 1e-3 * rng.standard_normal((n + 1, n + 1))
    f[0] = f[-1] = 0.0
    f[:, 0] = f[:, -1] = 0.0

    print("== Listing 1: sequential ==")
    x_seq = jacobi_sequential(f, iters)
    print(f"   max|x| = {np.abs(x_seq).max():.6e}")

    print("== Listing 2: hand-written message passing ==")
    machine = Machine(n_procs=p * p, cost=CostModel.hypercube_1989())
    x_mp, t_mp = jacobi_message_passing(machine, p, f, iters)
    print(f"   identical to sequential: {np.allclose(x_mp, x_seq)}")
    print(f"   makespan {t_mp.makespan():.4f}s, messages {t_mp.message_count()}")

    print("== Listing 3: KF1 (doall + distribution clause) ==")
    machine = Machine(n_procs=p * p, cost=CostModel.hypercube_1989())
    grid = ProcessorGrid((p, p))
    x_kf1, t_kf1 = jacobi_kf1(machine, grid, f, iters)
    print(f"   identical to sequential: {np.allclose(x_kf1, x_seq)}")
    print(f"   makespan {t_kf1.makespan():.4f}s, messages {t_kf1.message_count()}")
    print(f"   utilization {t_kf1.utilization():.2%}")

    print("\nSchedule replay (the inspector/executor amortization):")
    print(f"   events by direction: {t_kf1.schedule_directions()}")
    for direction in sorted(t_kf1.schedule_directions()):
        print(
            f"   hit rate [{direction:7s}]: "
            f"{t_kf1.schedule_hit_rate(direction):.3f}"
        )
    print(
        f"   -> the loop's communication compiled once; the other "
        f"{iters - 1} sweeps replayed the frozen TransferSchedules"
    )

    print("\nOverlap-aware executor (same messages, interior points")
    print("computed while ghosts are in flight):")
    machine = Machine(n_procs=p * p, cost=CostModel.hypercube_1989())
    x_ovl, t_ovl = jacobi_kf1(machine, grid, f, iters, overlap=True)
    print(f"   identical results: {np.array_equal(x_ovl, x_kf1)}")
    print(
        f"   makespan {t_ovl.makespan():.4f}s "
        f"({t_kf1.makespan() / t_ovl.makespan():.2f}x faster), "
        f"overlap fraction {t_ovl.overlap_fraction():.2%} "
        f"(serialized: {t_kf1.overlap_fraction():.2%})"
    )

    print("\nProcessor activity of the KF1 run:")
    print(t_kf1.gantt(width=60))

    print("\nThe paper's tuning claim: change only the dist clause.")
    for dist in [("block", "block"), ("block", "*"), ("cyclic", "cyclic")]:
        machine = Machine(n_procs=p * p, cost=CostModel.hypercube_1989())
        grid = ProcessorGrid((p, p)) if "*" not in dist else ProcessorGrid((p * p,))
        x, t = jacobi_kf1(machine, grid, f, iters, dist=dist)
        ok = np.allclose(x, x_seq)
        print(
            f"   dist {str(dist):24s} same answer: {ok}   "
            f"bytes moved: {t.total_bytes():>8d}   makespan: {t.makespan():.4f}s"
        )


if __name__ == "__main__":
    main()
