#!/usr/bin/env python
"""Quickstart: the paper's Jacobi example, three ways.

Runs Listing 1 (sequential), Listing 2 (hand-written message passing)
and Listing 3 (KF1: distributed arrays + doall, compiler-generated
communication) on the same Poisson problem and shows that they produce
identical iterates.  Listing 3 goes through the two-phase API: a
Session owns the caches, ``repro.compile`` freezes the communication
schedules from the distribution clauses alone (``explain()`` prints the
message pattern before anything runs), and ``Program.run`` replays them
on every launch -- the second run is pure cache hits.  See docs/api.md
for the lifecycle and docs/schedule-lifecycle.md for the cache rules.

Run:  PYTHONPATH=src python examples/quickstart.py
"""

import numpy as np

import repro
from repro import CostModel, Machine, Session
from repro.baselines import jacobi_message_passing, jacobi_sequential

LISTING_3 = """
processors procs({P}, {P})
real X(0:{N}, 0:{N}) dist ({DIST})
real f(0:{N}, 0:{N}) dist ({DIST})

doall (i, j) = [1, {M}] * [1, {M}] on owner(X(i, j))
  X(i, j) = 0.25*(X(i+1, j) + X(i-1, j) + X(i, j+1) + X(i, j-1)) - f(i, j)
end doall
"""


def listing3(n, p, dist="block, block"):
    return (
        LISTING_3.replace("{P}", str(p))
        .replace("{N}", str(n))
        .replace("{M}", str(n - 1))
        .replace("{DIST}", dist)
    )


def main():
    n = 32          # grid is (n+1) x (n+1)
    iters = 20
    p = 2           # 2 x 2 processor array

    # A Poisson right-hand side (scaled so the fixed point is tame).
    rng = np.random.default_rng(42)
    f = 1e-3 * rng.standard_normal((n + 1, n + 1))
    f[0] = f[-1] = 0.0
    f[:, 0] = f[:, -1] = 0.0

    print("== Listing 1: sequential ==")
    x_seq = jacobi_sequential(f, iters)
    print(f"   max|x| = {np.abs(x_seq).max():.6e}")

    print("== Listing 2: hand-written message passing ==")
    machine = Machine(n_procs=p * p, cost=CostModel.hypercube_1989())
    x_mp, t_mp = jacobi_message_passing(machine, p, f, iters)
    print(f"   identical to sequential: {np.allclose(x_mp, x_seq)}")
    print(f"   makespan {t_mp.makespan():.4f}s, messages {t_mp.message_count()}")

    print("== Listing 3: KF1, compiled and run ==")
    # Phase 1 -- compile: the Session owns the caches; the program's
    # communication schedules are frozen here, before anything runs.
    session = Session(Machine(n_procs=p * p, cost=CostModel.hypercube_1989()))
    program = repro.compile(listing3(n, p), session=session)
    print("   message pattern, derived from the dist clause alone:")
    for line in program.explain().splitlines():
        print(f"     {line}")
    print(f"   predicted time for {iters} sweeps: "
          f"{program.estimate() * iters:.4f}s")

    # Phase 2 -- run: bindings load the arrays, the frozen schedules
    # replay on every sweep.
    t_kf1 = program.run(f=f, iters=iters)
    x_kf1 = program.arrays["X"].to_global()
    print(f"   identical to sequential: {np.allclose(x_kf1, x_seq)}")
    print(f"   makespan {t_kf1.makespan():.4f}s, messages {t_kf1.message_count()}")
    print(f"   utilization {t_kf1.utilization():.2%}")

    print("\nSchedule replay (the compile-once/run-many amortization):")
    print(f"   events by direction: {t_kf1.schedule_directions()}")
    for direction in sorted(t_kf1.schedule_directions()):
        print(
            f"   hit rate [{direction:7s}]: "
            f"{t_kf1.schedule_hit_rate(direction):.3f}"
        )
    print(f"   session stats: {program.stats()['plans']}")
    print(
        "   -> the loop compiled once (at repro.compile); every sweep of "
        "every run replays the frozen TransferSchedules"
    )

    # A second run on the same Program re-binds nothing and replays
    # everything -- zero compiles, bit-identical results.
    x_first = x_kf1.copy()
    program.arrays["X"].from_global(np.zeros_like(f))
    t_again = program.run(iters=iters)
    x_again = program.arrays["X"].to_global()
    print("\nSecond run of the same Program (warm schedules):")
    print(f"   bit-identical results: {np.array_equal(x_again, x_first)}")
    print(f"   gather hit rate: {t_again.schedule_hit_rate('gather'):.3f}")

    print("\nOverlap-aware executor (same messages, interior points")
    print("computed while ghosts are in flight):")
    t_ovl = program.run(
        X=np.zeros_like(f), iters=iters, overlap=True,
        machine=Machine(n_procs=p * p, cost=CostModel.hypercube_1989()),
    )
    x_ovl = program.arrays["X"].to_global()
    print(f"   identical results: {np.array_equal(x_ovl, x_first)}")
    print(
        f"   makespan {t_ovl.makespan():.4f}s "
        f"({t_kf1.makespan() / t_ovl.makespan():.2f}x faster), "
        f"overlap fraction {t_ovl.overlap_fraction():.2%} "
        f"(serialized: {t_kf1.overlap_fraction():.2%})"
    )

    print("\nProcessor activity of the KF1 run:")
    print(t_kf1.gantt(width=60))

    print("\nThe paper's tuning claim: change only the dist clause.")
    for dist in ("block, block", "cyclic, cyclic"):
        prog = repro.compile(
            listing3(n, p, dist),
            machine=Machine(n_procs=p * p, cost=CostModel.hypercube_1989()),
        )
        t = prog.run(f=f, iters=iters)
        ok = np.allclose(prog.arrays["X"].to_global(), x_seq)
        print(
            f"   dist ({dist:14s}) same answer: {ok}   "
            f"bytes moved: {t.total_bytes():>8d}   makespan: {t.makespan():.4f}s"
        )


if __name__ == "__main__":
    main()
