#!/usr/bin/env python
"""3-D multigrid with zebra plane relaxation (paper section 5).

Solves a 3-D Poisson problem with the distributed mg3 of Listings 9-10:
zebra plane relaxation where each plane solve is itself a 2-D
tensor-product multigrid running on a *slice* of the processor array --
the compositionality that motivates the whole paper.  Also demonstrates
the section 5 discussion of alternate distributions: the same algorithm
under ``(*, block, block)`` (parallel plane solves) and
``(*, *, block)`` (sequential plane solves, no intra-plane traffic).

Run:  python examples/multigrid3d_poisson.py
"""

import numpy as np

from repro import CostModel, Machine, ProcessorGrid
from repro.tensor.multigrid3d import mg3_reference, mg3_solve
from repro.tensor.poisson import manufactured_3d, residual_norm_3d


def main():
    n = 8
    u_exact, f = manufactured_3d(n)

    print("== sequential mg3 convergence (V-cycles) ==")
    r0 = residual_norm_3d(np.zeros_like(f), f)
    for cycles in (1, 2, 4):
        u = mg3_reference(f, cycles=cycles)
        print(
            f"   {cycles} cycle(s): residual {residual_norm_3d(u, f) / r0:.3e}, "
            f"error {np.abs(u - u_exact).max():.3e}"
        )

    cost = CostModel.hypercube_1989()
    print("\n== distributed mg3: distribution ablation (section 5) ==")
    for dist, shape in [
        (("*", "block", "block"), (2, 2)),
        (("*", "*", "block"), (4,)),
    ]:
        machine = Machine(n_procs=4, cost=cost)
        grid = ProcessorGrid(shape)
        u, trace = mg3_solve(machine, grid, f, cycles=2, dist=dist)
        assert np.allclose(u, mg3_reference(f, cycles=2)), "mismatch vs reference"
        print(
            f"   dist {str(dist):22s} makespan {trace.makespan():8.4f}s  "
            f"bytes {trace.total_bytes():>9d}  msgs {trace.message_count():>5d}  "
            f"util {trace.utilization():6.2%}"
        )

    print("\n   (same numerics, different communication: the paper's point that")
    print("    distributions are tuned by editing one declaration)")

    print("\n== zebra plane schedule (Mark events of one V-cycle) ==")
    machine = Machine(n_procs=4, cost=cost)
    _, trace = mg3_solve(machine, ProcessorGrid((2, 2)), f, cycles=1)
    planes = trace.active_procs_by_payload("mg3/plane")
    for (level, k), procs in sorted(planes.items()):
        print(f"   level {level}: plane {k} relaxed by processors {procs}")


if __name__ == "__main__":
    main()
