#!/usr/bin/env python
"""ADI on a heat-conduction problem (paper section 4, Listings 7-8).

Solves the steady anisotropic heat equation

    a Txx + b Tyy = -q(x, y),   T = 0 on the boundary,

with a localized heat source, using the distributed ADI iteration.
Compares the non-pipelined variant (Listing 7: one parallel tridiagonal
solve per grid line) with the pipelined variant (Listing 8: all of a
processor slice's lines streamed through one pipelined solver), and
reports the speedup the paper promises from pipelining.

Run:  python examples/adi_heat.py
"""

import numpy as np

from repro import CostModel, Machine, ProcessorGrid
from repro.tensor.adi import adi_reference, adi_solve
from repro.tensor.poisson import Coeffs2D, residual_norm_2d


def heat_source(n):
    """A hot spot off-center on the unit square."""
    x = np.linspace(0, 1, n + 1)
    X, Y = np.meshgrid(x, x, indexing="ij")
    q = np.exp(-120.0 * ((X - 0.3) ** 2 + (Y - 0.6) ** 2))
    q[0] = q[-1] = 0.0
    q[:, 0] = q[:, -1] = 0.0
    return -q


def main():
    n = 64
    iters = 30
    coeffs = Coeffs2D(a=1.0, b=0.2)   # anisotropic conduction
    f = heat_source(n)

    print("== sequential PR-ADI convergence ==")
    r0 = residual_norm_2d(np.zeros_like(f), f, coeffs)
    for k in (5, 10, 20, 30):
        u = adi_reference(f, iters=k, coeffs=coeffs)
        rk = residual_norm_2d(u, f, coeffs)
        print(f"   after {k:>3} sweeps: residual {rk / r0:.3e} of initial")

    print("\n== distributed ADI, 4 x 4 processors ==")
    cost = CostModel.hypercube_1989()
    results = {}
    for pipelined in (False, True):
        machine = Machine(n_procs=16, cost=cost)
        grid = ProcessorGrid((4, 4))
        u, trace = adi_solve(
            machine, grid, f, iters=3, coeffs=coeffs, pipelined=pipelined
        )
        label = "pipelined (Listing 8)" if pipelined else "per-line (Listing 7)"
        results[pipelined] = trace
        print(
            f"   {label:24s} makespan {trace.makespan():8.4f}s  "
            f"utilization {trace.utilization():6.2%}  "
            f"messages {trace.message_count()}"
        )
        ref = adi_reference(f, iters=3, coeffs=coeffs)
        assert np.allclose(u, ref), "distributed ADI diverged from reference"

    speedup = results[False].makespan() / results[True].makespan()
    print(f"\n   pipelining speedup: {speedup:.2f}x  (paper: 'better speed-ups')")


if __name__ == "__main__":
    main()
