#!/usr/bin/env python
"""Tensor-product spline surface fitting (the paper's first motivating domain).

Fits a bicubic-spline-style surface to noisy samples of a function on a
grid by the classic tensor product technique: fit natural cubic splines
along every x-line, then along every y-line of the resulting
coefficients.  Each line fit is a tridiagonal solve -- the 1-D kernel of
section 3 -- and the multi-line solves run on the simulated machine with
the pipelined parallel tridiagonal solver.

Run:  python examples/spline_surface.py
"""

import numpy as np

from repro import CostModel, Machine
from repro.kernels.pipelined import pipelined_multi_tri_solve
from repro.kernels.spline import spline_eval, spline_system
from repro.kernels.thomas import thomas_solve


def surface(X, Y):
    return np.sin(2 * np.pi * X) * np.cos(np.pi * Y) + 0.5 * X * Y


def fit_lines_parallel(knots, values, p, machine):
    """Second-derivative fits for many lines at once (distributed)."""
    m, n = values.shape
    B = np.empty((m, n))
    A = np.empty((m, n))
    C = np.empty((m, n))
    F = np.empty((m, n))
    for s in range(m):
        B[s], A[s], C[s], F[s] = spline_system(knots, values[s])
    M, trace = pipelined_multi_tri_solve(B, A, C, F, p, machine=machine)
    return M, trace


def main():
    n = 64            # knots per dimension
    p = 8             # simulated processors
    rng = np.random.default_rng(3)

    x = np.linspace(0.0, 1.0, n)
    X, Y = np.meshgrid(x, x, indexing="ij")
    data = surface(X, Y) + 1e-3 * rng.standard_normal((n, n))

    print(f"== fitting {n} x-lines then {n} y-lines on {p} processors ==")
    cost = CostModel.hypercube_1989()

    Mx, t1 = fit_lines_parallel(x, data, p, Machine(n_procs=p, cost=cost))
    My, t2 = fit_lines_parallel(x, data.T, p, Machine(n_procs=p, cost=cost))
    print(f"   x-line fits: makespan {t1.makespan():.4f}s, util {t1.utilization():.2%}")
    print(f"   y-line fits: makespan {t2.makespan():.4f}s, util {t2.utilization():.2%}")

    # verify one parallel line fit against the sequential kernel
    s = n // 2
    b, a, c, f = spline_system(x, data[s])
    np.testing.assert_allclose(Mx[s], thomas_solve(b, a, c, f), rtol=1e-8)

    # evaluate the line splines between knots and measure fit quality
    xq = np.linspace(0.0, 1.0, 301)
    line = spline_eval(x, data[s], Mx[s], xq)
    truth = surface(np.full_like(xq, x[s]), xq)
    err = np.max(np.abs(line - truth))
    print(f"   mid-line spline vs true surface: max error {err:.2e}")
    assert err < 5e-3

    print("   parallel fits match the sequential Thomas kernel: OK")


if __name__ == "__main__":
    main()
