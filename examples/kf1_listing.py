#!/usr/bin/env python
"""Run a KF1 program written in the paper's own surface syntax.

The library ships a front end for the KF1 subset the listings use, so
Listing 3 can be executed nearly verbatim: processor declaration,
distribution clauses, and the doall with its on clause are all parsed
from text, compiled, and run on the simulated machine.  The example
also re-runs the same source with an edited distribution clause -- the
paper's "tuning by declaration" workflow, at the level of program text.

Run:  python examples/kf1_listing.py
"""

import numpy as np

from repro import CostModel, Machine, run_spmd
from repro.compiler import clear_plan_cache, estimate_doall
from repro.lang.kf1 import parse_program
from repro.tensor.jacobi import jacobi_reference

LISTING_3 = """
! Listing 3: KF1 version of the Jacobi algorithm
processors procs(2, 2)
real X(0:32, 0:32) dist ({DIST})
real f(0:32, 0:32) dist ({DIST})

doall (i, j) = [1, 31] * [1, 31] on owner(X(i, j))
  X(i, j) = 0.25*(X(i+1, j) + X(i-1, j) + X(i, j+1) + X(i, j-1)) - f(i, j)
end doall
"""


def main():
    rng = np.random.default_rng(1)
    f = 1e-3 * rng.standard_normal((33, 33))
    f[0] = f[-1] = 0.0
    f[:, 0] = f[:, -1] = 0.0
    iters = 10
    cost = CostModel.hypercube_1989()
    x_ref = jacobi_reference(f, iters)

    for dist in ("block, block", "cyclic, cyclic"):
        clear_plan_cache()
        source = LISTING_3.replace("{DIST}", dist)
        program = parse_program(source)
        program.arrays["f"].from_global(f)
        loop = program.loops[0]

        est = estimate_doall(loop)
        machine = Machine(n_procs=program.grid.size, cost=cost)

        def spmd(ctx):
            for _ in range(iters):
                yield from ctx.doall(loop)

        trace = run_spmd(machine, program.grid, spmd)
        ok = np.allclose(program.arrays["X"].to_global(), x_ref)
        print(f"dist ({dist})")
        print(f"   matches sequential reference: {ok}")
        print(f"   estimator: {est.total_messages()} msgs/sweep, "
              f"{est.total_bytes()} bytes/sweep, "
              f"predicted {est.predicted_time(cost) * iters:.4f}s")
        print(f"   executed:  {trace.message_count()} msgs total, "
              f"{trace.total_bytes()} bytes, makespan {trace.makespan():.4f}s")
        print()


if __name__ == "__main__":
    main()
