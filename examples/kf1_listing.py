#!/usr/bin/env python
"""Run a KF1 program written in the paper's own surface syntax.

The library ships a front end for the KF1 subset the listings use, so
Listing 3 can be executed nearly verbatim: ``repro.compile`` parses the
processor declaration, distribution clauses, and the doall with its on
clause straight from text, freezes the communication schedules, and
returns a Program whose ``run(**bindings)`` launches it on the simulated
machine.  The example also re-compiles the same source with an edited
distribution clause -- the paper's "tuning by declaration" workflow, at
the level of program text -- and prints each compile's predicted message
pattern next to what actually executed.

Run:  PYTHONPATH=src python examples/kf1_listing.py
"""

import numpy as np

import repro
from repro import CostModel, Machine
from repro.tensor.jacobi import jacobi_reference

LISTING_3 = """
! Listing 3: KF1 version of the Jacobi algorithm
processors procs(2, 2)
real X(0:32, 0:32) dist ({DIST})
real f(0:32, 0:32) dist ({DIST})

doall (i, j) = [1, 31] * [1, 31] on owner(X(i, j))
  X(i, j) = 0.25*(X(i+1, j) + X(i-1, j) + X(i, j+1) + X(i, j-1)) - f(i, j)
end doall
"""


def main():
    rng = np.random.default_rng(1)
    f = 1e-3 * rng.standard_normal((33, 33))
    f[0] = f[-1] = 0.0
    f[:, 0] = f[:, -1] = 0.0
    iters = 10
    cost = CostModel.hypercube_1989()
    x_ref = jacobi_reference(f, iters)

    for dist in ("block, block", "cyclic, cyclic"):
        source = LISTING_3.replace("{DIST}", dist)
        # compile: parse + freeze the communication schedules (each
        # compile gets its own Session, so the two layouts never share
        # cached plans)
        program = repro.compile(
            source, machine=Machine(n_procs=4, cost=cost)
        )
        est = program.loop_estimates()[0]
        trace = program.run(f=f, iters=iters)
        ok = np.allclose(program.arrays["X"].to_global(), x_ref)
        print(f"dist ({dist})")
        print(f"   matches sequential reference: {ok}")
        print(f"   estimator: {est.total_messages()} msgs/sweep, "
              f"{est.total_bytes()} bytes/sweep, "
              f"predicted {program.estimate(cost) * iters:.4f}s")
        print(f"   executed:  {trace.message_count()} msgs total, "
              f"{trace.total_bytes()} bytes, makespan {trace.makespan():.4f}s")
        print()

    # the compile-time message pattern, without running anything
    program = repro.compile(LISTING_3.replace("{DIST}", "block, block"))
    print("compile-time message pattern (dist block, block):")
    print(program.explain())


if __name__ == "__main__":
    main()
