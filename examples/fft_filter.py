#!/usr/bin/env python
"""Distributed FFT low-pass filtering (picture-processing motivation).

The paper lists Fast Fourier Transforms among the 1-D kernels and
picture processing among the application domains.  This example filters
a noisy 1-D signal with the hypercube binary-exchange FFT: forward
transform on p simulated processors, zero the high frequencies, inverse
transform (via the conjugate trick), and compare against numpy.

Run:  python examples/fft_filter.py
"""

import numpy as np

from repro import CostModel, Hypercube, Machine
from repro.kernels.fft import parallel_fft


def main():
    n = 256
    p = 8
    rng = np.random.default_rng(11)
    t = np.arange(n) / n
    clean = np.sin(2 * np.pi * 3 * t) + 0.5 * np.sin(2 * np.pi * 7 * t)
    noisy = clean + 0.8 * rng.standard_normal(n)

    cost = CostModel.hypercube_1989()

    print(f"== forward FFT of {n} points on a {p}-node hypercube ==")
    machine = Machine(topology=Hypercube.for_procs(p), cost=cost)
    spectrum, t_fwd = parallel_fft(noisy, p, machine=machine)
    np.testing.assert_allclose(spectrum, np.fft.fft(noisy), rtol=1e-8, atol=1e-8)
    print(f"   matches numpy.fft: OK   makespan {t_fwd.makespan():.4f}s, "
          f"messages {t_fwd.message_count()}")
    hops = {msg.hops for msg in t_fwd.messages if msg.tag[0] == "fft"}
    print(f"   butterfly exchanges are single-hop on the hypercube: {hops == {1}}")

    # low-pass: keep |freq| <= 10
    keep = 10
    filt = spectrum.copy()
    filt[keep + 1 : n - keep] = 0.0

    print("== inverse FFT (conjugate trick) on the machine ==")
    machine = Machine(topology=Hypercube.for_procs(p), cost=cost)
    inv, t_inv = parallel_fft(np.conj(filt), p, machine=machine)
    recovered = np.real(np.conj(inv)) / n
    np.testing.assert_allclose(recovered, np.real(np.fft.ifft(filt)), atol=1e-8)

    err_noisy = np.sqrt(np.mean((noisy - clean) ** 2))
    err_rec = np.sqrt(np.mean((recovered - clean) ** 2))
    print(f"   rms error: noisy {err_noisy:.3f} -> filtered {err_rec:.3f}")
    assert err_rec < err_noisy


if __name__ == "__main__":
    main()
