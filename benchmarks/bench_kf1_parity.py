"""C2 -- Section 6 claim: "there would be no difference between the
execution time of algorithms expressed in KF1, and those expressed in a
message passing language, assuming equally good back-end machine code
generators."

We compare the simulated makespan of the compiled KF1 Jacobi against
the hand-written Listing 2 version on identical machines.  The compiled
loop exchanges the same edge strips plus four one-element corner
messages per sweep (a documented box-region overapproximation), so we
assert parity within a modest tolerance and report the exact gap.
"""

import numpy as np

from benchmarks._report import report
from repro.baselines import jacobi_message_passing
from repro.compiler import clear_plan_cache
from repro.lang import ProcessorGrid
from repro.machine import CostModel, Machine
from repro.tensor.jacobi import jacobi_kf1


def run(n=64, iters=10, p=4):
    rng = np.random.default_rng(9)
    f = 1e-3 * rng.standard_normal((n + 1, n + 1))
    f[0] = f[-1] = 0.0
    f[:, 0] = f[:, -1] = 0.0
    rows = []
    for cost_name, cost in [
        ("hypercube_1989", CostModel.hypercube_1989()),
        ("balanced", CostModel.balanced()),
        ("fast_network", CostModel.fast_network()),
    ]:
        x_mp, t_mp = jacobi_message_passing(
            Machine(n_procs=p * p, cost=cost), p, f, iters
        )
        clear_plan_cache()
        x_kf1, t_kf1 = jacobi_kf1(
            Machine(n_procs=p * p, cost=cost), ProcessorGrid((p, p)), f, iters
        )
        assert np.allclose(x_mp, x_kf1)
        rows.append(
            {
                "cost": cost_name,
                "mp": t_mp.makespan(),
                "kf1": t_kf1.makespan(),
                "ratio": t_kf1.makespan() / t_mp.makespan(),
            }
        )
    return rows


def test_kf1_execution_parity(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["cost model        mp(s)       kf1(s)      kf1/mp"]
    for r in rows:
        lines.append(
            f"{r['cost']:<15} {r['mp']:>10.5f} {r['kf1']:>12.5f} {r['ratio']:>9.2f}"
        )
        assert 0.5 < r["ratio"] < 1.6, r
    report(
        "C2",
        "Section 6: compiled KF1 vs hand-written message passing time",
        lines,
    )
