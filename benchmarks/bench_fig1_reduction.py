"""F1 -- Figure 1: the first reduction step of the substructured solver.

The paper's figure shows that after each processor eliminates its block
interior, (a) interior rows couple only to the block's first and last
rows (fill-in columns l_i and u_i), and (b) the boundary rows of all p
blocks form a tridiagonal system of 2p equations.  This benchmark
verifies both structural facts on the actual factored matrix and
reports the reduced-system sizes.
"""

import numpy as np

from benchmarks._report import dominant_system, report
from repro.kernels.substructured import local_reduce, solve_reduced_pairs
from repro.kernels.thomas import thomas_solve


def run(n=512, p=8):
    b, a, c, f = dominant_system(n, seed=1)
    m = n // p
    pairs = []
    interior_structure_ok = True
    x_true = thomas_solve(b, a, c, f)
    for q in range(p):
        sl = slice(q * m, (q + 1) * m)
        red = local_reduce(b[sl], a[sl], c[sl], f[sl])
        pairs.append((red.first, red.last))
        # interior rows satisfy e_i x_lo + a_i x_i + g_i x_hi = f_i
        xs = x_true[sl]
        for i in range(1, m - 1):
            lhs = red.e[i] * xs[0] + red.a[i] * xs[i] + red.g[i] * xs[-1]
            if abs(lhs - red.f[i]) > 1e-6 * max(1.0, abs(red.f[i])):
                interior_structure_ok = False
    x_red = solve_reduced_pairs(pairs)
    expected = np.concatenate(
        [[x_true[q * m], x_true[(q + 1) * m - 1]] for q in range(p)]
    )
    boundary_ok = bool(np.allclose(x_red, expected, rtol=1e-7))
    return {
        "n": n,
        "p": p,
        "reduced_rows": 2 * p,
        "interior_structure_ok": interior_structure_ok,
        "reduced_tridiagonal_solves_exactly": boundary_ok,
    }


def test_fig1_first_reduction_step(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result["interior_structure_ok"]
    assert result["reduced_tridiagonal_solves_exactly"]
    report(
        "F1",
        "Figure 1: first reduction step structure",
        [
            f"n = {result['n']}, p = {result['p']}",
            f"interior rows couple only (first, self, last): {result['interior_structure_ok']}",
            f"boundary rows form an exactly-solvable tridiagonal of "
            f"{result['reduced_rows']} rows (= 2p): "
            f"{result['reduced_tridiagonal_solves_exactly']}",
        ],
    )
