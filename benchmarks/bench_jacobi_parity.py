"""L13 -- Listings 1-3: three Jacobi versions produce identical iterates.

Listing 1 (sequential), Listing 2 (hand message passing) and Listing 3
(KF1 doall) are the same algorithm; this benchmark checks bit-level
agreement of the iterates and compares the communication structure: the
compiled KF1 loop derives the same edge-neighbor ghost exchange the
Listing 2 programmer wrote by hand (plus one-element corner transfers
from the compiler's box-product regions).
"""

import numpy as np

from benchmarks._report import report
from repro.baselines import jacobi_message_passing, jacobi_sequential
from repro.compiler import clear_plan_cache
from repro.lang import ProcessorGrid
from repro.machine import CostModel, Machine
from repro.tensor.jacobi import jacobi_kf1


def run(n=32, iters=10, p=2):
    rng = np.random.default_rng(6)
    f = 1e-3 * rng.standard_normal((n + 1, n + 1))
    f[0] = f[-1] = 0.0
    f[:, 0] = f[:, -1] = 0.0
    cost = CostModel.hypercube_1989()

    x_seq = jacobi_sequential(f, iters)
    x_mp, t_mp = jacobi_message_passing(Machine(n_procs=p * p, cost=cost), p, f, iters)
    clear_plan_cache()
    x_kf1, t_kf1 = jacobi_kf1(
        Machine(n_procs=p * p, cost=cost), ProcessorGrid((p, p)), f, iters
    )
    return {
        "seq_vs_mp": float(np.max(np.abs(x_seq - x_mp))),
        "seq_vs_kf1": float(np.max(np.abs(x_seq - x_kf1))),
        "mp_msgs": t_mp.message_count(),
        "kf1_msgs": t_kf1.message_count(),
        "mp_bytes": t_mp.total_bytes(),
        "kf1_bytes": t_kf1.total_bytes(),
    }


def test_listings_1_2_3_parity(benchmark):
    r = benchmark.pedantic(run, rounds=1, iterations=1)
    assert r["seq_vs_mp"] == 0.0
    assert r["seq_vs_kf1"] < 1e-13
    # KF1 moves a comparable amount of data (corners add 4 words/sweep)
    assert r["kf1_bytes"] < 1.2 * r["mp_bytes"]
    report(
        "L13",
        "Listings 1-3: sequential vs message-passing vs KF1 Jacobi",
        [
            f"max |seq - mp|  = {r['seq_vs_mp']:.1e}",
            f"max |seq - kf1| = {r['seq_vs_kf1']:.1e}",
            f"messages: hand-written {r['mp_msgs']}, compiled {r['kf1_msgs']}",
            f"bytes:    hand-written {r['mp_bytes']}, compiled {r['kf1_bytes']}",
        ],
    )
