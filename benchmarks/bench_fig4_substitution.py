"""F4 -- Figure 4: the substitution phase computes interior values.

"In the first log2(p) - 1 steps of the substitution phase, two
intermediate solution values need to be computed ... In the last step,
each processor computes n/p - 2 solution values, completing the
solution."  This benchmark counts exactly those per-step value
productions from the trace's Compute records and verifies the recovered
solution.
"""

import numpy as np

from benchmarks._report import dominant_system, report
from repro.kernels.substructured import substructured_tri_solve
from repro.kernels.thomas import thomas_solve


def run(n=1024, p=16):
    b, a, c, f = dominant_system(n, seed=4)
    x, trace = substructured_tri_solve(b, a, c, f, p)
    err = float(np.max(np.abs(x - thomas_solve(b, a, c, f))))
    tree_substs = [c for c in trace.computes if c.label == "tree_subst"]
    block_substs = [c for c in trace.computes if c.label == "block_subst"]
    return {
        "n": n,
        "p": p,
        "err": err,
        "tree_subst_events": len(tree_substs),
        "block_subst_events": len(block_substs),
    }


def test_fig4_substitution_phase(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    n, p = result["n"], result["p"]
    # intermediate steps: one two-value solve per saved four-row system
    # = p/2 + p/4 + ... + 2 = p - 2 of them
    assert result["tree_subst_events"] == p - 2
    # final step: every processor recovers its block interior (n/p - 2 values)
    assert result["block_subst_events"] == p
    assert result["err"] < 1e-7
    report(
        "F4",
        "Figure 4: substitution computes intermediate then interior values",
        [
            f"n = {n}, p = {p}",
            f"two-value tree substitutions: {result['tree_subst_events']} (= p - 2)",
            f"block interior recoveries of n/p - 2 = {n // p - 2} values: "
            f"{result['block_subst_events']} (= p)",
            f"max |x - thomas| = {result['err']:.2e}",
        ],
    )
