"""F5 -- Figure 5: shuffle/unshuffle mapping of the data-flow graph.

"This mapping is easy to program, and is advantageous when there are
multiple tridiagonal systems to be solved."  The ablation: solve m
systems with the pipelined driver under the contiguous mapping (pair j
of level l on processor j * 2**l, so processor 0 serves every level)
versus the shuffle mapping (disjoint processor groups per level).  The
shuffle mapping should win on makespan and utilization as m grows.
"""

from benchmarks._report import dominant_systems, report
from repro.kernels.pipelined import pipelined_multi_tri_solve
from repro.kernels.substructured import ContiguousMapping, ShuffleMapping
from repro.machine import CostModel, Machine


def run(p=16, n=512, ms=(1, 4, 16)):
    cost = CostModel.hypercube_1989()
    rows = []
    for m in ms:
        B, A, C, F = dominant_systems(m, n, seed=5)
        _, t_con = pipelined_multi_tri_solve(
            B, A, C, F, p, machine=Machine(n_procs=p, cost=cost),
            mapping_cls=ContiguousMapping,
        )
        _, t_shf = pipelined_multi_tri_solve(
            B, A, C, F, p, machine=Machine(n_procs=p, cost=cost),
            mapping_cls=ShuffleMapping,
        )
        rows.append(
            {
                "m": m,
                "contiguous": t_con.makespan(),
                "shuffle": t_shf.makespan(),
                "util_contiguous": t_con.utilization(),
                "util_shuffle": t_shf.utilization(),
            }
        )
    return rows


def test_fig5_mapping_ablation(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["m   contiguous(s)  shuffle(s)  util_cont  util_shuf"]
    for r in rows:
        lines.append(
            f"{r['m']:<3} {r['contiguous']:>12.5f} {r['shuffle']:>11.5f}"
            f" {r['util_contiguous']:>9.2%} {r['util_shuffle']:>9.2%}"
        )
    # shuffle advantage at the largest m (the paper's multi-system case)
    big = rows[-1]
    assert big["shuffle"] <= big["contiguous"] * 1.02
    assert big["util_shuffle"] >= big["util_contiguous"] * 0.98
    report(
        "F5",
        "Figure 5: shuffle vs contiguous mapping for m pipelined systems",
        lines,
    )
