"""A2 -- section 2's cyclic-distribution claim, quantified on LU.

"Another kind of distribution is a cyclic distribution, especially
useful in numerical linear algebra, in which the elements are
distributed in a round-robin fashion across the processors."  We factor
the same diagonally dominant matrix under block and cyclic row
distributions (same program, one declaration changed) and report load
balance and makespan.  Cyclic must balance the shrinking elimination
window; block must not.
"""

import numpy as np

from benchmarks._report import report
from repro.compiler import clear_plan_cache
from repro.lang import ProcessorGrid
from repro.machine import CostModel, Machine
from repro.tensor.lu import lu_distributed, lu_reference


def run(n=48, p=4):
    rng = np.random.default_rng(21)
    A = rng.uniform(-1, 1, (n, n))
    A += np.diag(np.abs(A).sum(axis=1) + 1.0)
    ref = lu_reference(A)
    rows = []
    for cost_name, cost in [
        ("hypercube_1989", CostModel.hypercube_1989()),
        ("fast_network", CostModel.fast_network()),
    ]:
        for dist in ("block", "cyclic"):
            clear_plan_cache()
            machine = Machine(n_procs=p, cost=cost)
            LU, trace = lu_distributed(machine, ProcessorGrid((p,)), A, dist=dist)
            busy = [trace.busy_time(r) for r in range(p)]
            rows.append(
                {
                    "cost": cost_name,
                    "dist": dist,
                    "err": float(np.max(np.abs(LU - ref))),
                    "time": trace.makespan(),
                    "imbalance": max(busy) / (sum(busy) / p),
                    "util": trace.utilization(),
                }
            )
    return rows


def test_lu_block_vs_cyclic(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["cost model       dist     time(s)    imbalance   util     err"]
    for r in rows:
        lines.append(
            f"{r['cost']:<16} {r['dist']:<8} {r['time']:>8.5f}"
            f" {r['imbalance']:>9.2f} {r['util']:>9.2%}  {r['err']:.1e}"
        )
        assert r["err"] < 1e-10
    by = {(r["cost"], r["dist"]): r for r in rows}
    # cyclic always balances the computation
    for cost in ("hypercube_1989", "fast_network"):
        assert by[(cost, "cyclic")]["imbalance"] < by[(cost, "block")]["imbalance"]
    # once communication is cheap, balance wins the makespan too
    assert by[("fast_network", "cyclic")]["time"] < by[("fast_network", "block")]["time"]
    lines.append("(at 1989 latencies block's smaller participation sets can hide")
    lines.append(" the imbalance; with cheap communication cyclic wins outright --")
    lines.append(" 'the best alternative depends on ... the cost of communication')")
    report("A2", "Section 2: cyclic distribution balances LU elimination", lines)
