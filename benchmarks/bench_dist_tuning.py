"""C3 -- Section 2 claim: distribution tuning is a declaration change.

"Note that the body of the doall loop here is independent of the
distribution of the array X and of the processor array P. Thus a
variety of distribution patterns can be tried by simple modifications
of this program."  We tune the identical Jacobi program over several
distribution clauses -- but, instead of naively executing every
candidate, we first run the static performance estimator (the tool
section 2 promises) over the whole candidate set and *prune*: only
configurations whose predicted time is within ``prune_factor`` of the
best prediction are executed at all.  For the executed survivors we
verify unchanged numerics and exact predicted-vs-executed agreement on
message counts and byte volumes -- the evidence that pruning on
predictions is sound.
"""

import os
import sys

import numpy as np

try:
    from benchmarks._report import report
except ModuleNotFoundError:  # invoked as a script: python benchmarks/bench_...
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks._report import report
from repro.compiler import clear_plan_cache, estimate_doall
from repro.lang import DistArray, ProcessorGrid
from repro.machine import CostModel, Machine
from repro.tensor.jacobi import build_jacobi_loop, jacobi_kf1


CONFIGS = [
    (("block", "block"), (2, 2)),
    (("block", "*"), (4,)),
    (("*", "block"), (4,)),
    (("cyclic", "cyclic"), (2, 2)),
]


def run(n=32, iters=4, prune_factor=2.0):
    rng = np.random.default_rng(10)
    f = 1e-3 * rng.standard_normal((n + 1, n + 1))
    f[0] = f[-1] = 0.0
    f[:, 0] = f[:, -1] = 0.0
    cost = CostModel.hypercube_1989()

    # ---- phase 1: estimate every candidate, no execution ---------------
    rows = []
    for dist, shape in CONFIGS:
        clear_plan_cache()
        grid = ProcessorGrid(shape)
        X = DistArray(f.shape, grid, dist=dist, name="X")
        F = DistArray(f.shape, grid, dist=dist, name="F")
        est = estimate_doall(build_jacobi_loop(X, F, n, grid))
        rows.append(
            {
                "dist": str(dist),
                "shape": shape,
                "raw_dist": dist,
                "pred_time": est.predicted_time(cost) * iters,
                "pred_bytes": est.total_bytes() * iters,
                "pred_msgs": est.total_messages() * iters,
            }
        )
    best_pred = min(r["pred_time"] for r in rows)

    # ---- phase 2: execute only the survivors ---------------------------
    base = None
    for r in rows:
        r["pruned"] = r["pred_time"] > prune_factor * best_pred
        if r["pruned"]:
            r.update(same=None, bytes=None, msgs=None, time=None, agree=None)
            continue
        clear_plan_cache()
        machine = Machine(n_procs=4, cost=cost)
        grid = ProcessorGrid(r["shape"])
        x, trace = jacobi_kf1(machine, grid, f, iters, dist=r["raw_dist"])
        if base is None:
            base = x
        r["same"] = bool(np.allclose(x, base))
        r["bytes"] = trace.total_bytes()
        r["msgs"] = trace.message_count()
        r["time"] = trace.makespan()
        # predicted-vs-executed agreement: comm volumes are exact; the
        # time prediction is a per-rank serial upper bound, so executed
        # makespan must come in at or below it
        r["agree"] = (
            r["bytes"] == r["pred_bytes"]
            and r["msgs"] == r["pred_msgs"]
            and r["time"] <= r["pred_time"] * 1.0001
        )
    return rows


def check_and_report(rows):
    executed = [r for r in rows if not r["pruned"]]
    pruned = [r for r in rows if r["pruned"]]
    assert executed, "pruning removed every configuration"
    assert pruned, "the estimator pruned nothing; enumeration stayed naive"
    # the known-bad stencil layout must be pruned on prediction alone
    assert any("cyclic" in r["dist"] for r in pruned)
    lines = [
        "distribution            state     bytes(run/pred)      msgs(run/pred)"
        "   time(run/pred)"
    ]
    for r in rows:
        if r["pruned"]:
            lines.append(
                f"{r['dist']:<22} pruned         -/{r['pred_bytes']:<8}"
                f"       -/{r['pred_msgs']:<6}       -/{r['pred_time']:.5f}"
            )
            continue
        lines.append(
            f"{r['dist']:<22} ran     {r['bytes']:>8}/{r['pred_bytes']:<8}"
            f"  {r['msgs']:>6}/{r['pred_msgs']:<6} {r['time']:>9.5f}/{r['pred_time']:.5f}"
        )
        assert r["same"]
        assert r["agree"], f"prediction disagreed with execution for {r['dist']}"
    n_pruned = len(pruned)
    lines.append(
        f"estimator pruned {n_pruned}/{len(rows)} configurations before execution; "
        "executed volumes matched predictions exactly"
    )
    report("C3", "Section 2: estimator-pruned distribution tuning", lines)


def test_distribution_tuning(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check_and_report(rows)


if __name__ == "__main__":
    check_and_report(run())
