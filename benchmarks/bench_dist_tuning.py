"""C3 -- Section 2 claim: distribution tuning is a declaration change.

"Note that the body of the doall loop here is independent of the
distribution of the array X and of the processor array P. Thus a
variety of distribution patterns can be tried by simple modifications
of this program."  We tune the identical Jacobi program over several
distribution clauses -- but, instead of naively executing every
candidate, we first run the static performance estimator (the tool
section 2 promises) over the whole candidate set and *prune*: only
configurations whose predicted time is within ``prune_factor`` of the
best prediction are executed at all.  For the executed survivors we
verify unchanged numerics and exact predicted-vs-executed agreement on
message counts and byte volumes -- the evidence that pruning on
predictions is sound.

Since ``repro.tune`` landed, the prune-then-execute machinery lives
there (:func:`repro.tune.tune` with an explicit :class:`TuneSpace`);
this benchmark pins the same committed numbers and pruned-candidate
assertions on top of it, so the Section-2 claim and the autotuner are
demonstrably one mechanism.  ``benchmarks/bench_autotune.py`` is the
same machinery under a *calibrated* (host-seconds) model.
"""

import os
import sys

import numpy as np

try:
    from benchmarks._report import report
except ModuleNotFoundError:  # invoked as a script: python benchmarks/bench_...
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks._report import report

import repro
from repro import Machine, Session, TuneSpace, tune
from repro.machine import CostModel

#: the Section-2 candidate set: (dist clause, processor-grid shape)
CONFIGS = [
    (("block", "block"), (2, 2)),
    (("block", "*"), (4,)),
    (("*", "block"), (4,)),
    (("cyclic", "cyclic"), (2, 2)),
]


def _jacobi_src(n):
    return f"""
processors procs(2, 2)
real X(0:{n}, 0:{n}) dist (block, block)
real F(0:{n}, 0:{n}) dist (block, block)
doall (i, j) = [1, {n - 1}] * [1, {n - 1}] on owner(X(i, j))
  X(i, j) = 0.25*(X(i+1, j) + X(i-1, j) + X(i, j+1) + X(i, j-1)) - F(i, j)
end doall
"""


def run(n=32, iters=4, prune_factor=2.0):
    rng = np.random.default_rng(10)
    f = 1e-3 * rng.standard_normal((n + 1, n + 1))
    f[0] = f[-1] = 0.0
    f[:, 0] = f[:, -1] = 0.0
    cost = CostModel.hypercube_1989()

    # ONE Jacobi program; every candidate below is a declaration change
    sess = Session(Machine(n_procs=4, cost=cost))
    prog = repro.compile(_jacobi_src(n), session=sess)
    prog.arrays["X"].from_global(np.zeros((n + 1, n + 1)))
    prog.arrays["F"].from_global(f)

    # the cross product dist x shape covers CONFIGS exactly: pairings
    # whose distributed-dimension count cannot match the grid rank are
    # enumerated but infeasible, and the tuner marks them as such
    space = TuneSpace(
        distributions=tuple(d for d, _ in CONFIGS),
        grid_shapes=tuple(sorted({s for _, s in CONFIGS})),
        overlap=(False,),
    )
    result = tune(
        prog, space=space, budget=len(CONFIGS),
        cost=cost, prune_factor=prune_factor, iters=iters,
    )

    by_key = {
        (tuple(c.as_dict()["dist"]), c.grid_shape): c
        for c in result.candidates if c.feasible
    }
    rows = []
    base = None
    for dist, shape in CONFIGS:
        c = by_key[(dist, shape)]
        r = {
            "dist": str(dist),
            "shape": shape,
            "pred_time": c.predicted * iters,
            "pred_bytes": c.pred_bytes * iters,
            "pred_msgs": c.pred_msgs * iters,
            "pruned": not c.executed,
        }
        if c.executed:
            x = c.program.arrays["X"].to_global()
            if base is None:
                base = x
            r["same"] = bool(np.allclose(x, base))
            r["bytes"] = int(round(c.measured_bytes * iters))
            r["msgs"] = int(round(c.measured_msgs * iters))
            r["time"] = c.measured * iters
            # predicted-vs-executed agreement: comm volumes are exact;
            # the time prediction is a per-rank serial upper bound, so
            # executed makespan must come in at or below it
            r["agree"] = (
                r["bytes"] == r["pred_bytes"]
                and r["msgs"] == r["pred_msgs"]
                and r["time"] <= r["pred_time"] * 1.0001
            )
        else:
            r.update(same=None, bytes=None, msgs=None, time=None, agree=None)
        rows.append(r)
    return rows


def check_and_report(rows):
    executed = [r for r in rows if not r["pruned"]]
    pruned = [r for r in rows if r["pruned"]]
    assert executed, "pruning removed every configuration"
    assert pruned, "the estimator pruned nothing; enumeration stayed naive"
    # the known-bad stencil layout must be pruned on prediction alone
    assert any("cyclic" in r["dist"] for r in pruned)
    lines = [
        "distribution            state     bytes(run/pred)      msgs(run/pred)"
        "   time(run/pred)"
    ]
    for r in rows:
        if r["pruned"]:
            lines.append(
                f"{r['dist']:<22} pruned         -/{r['pred_bytes']:<8}"
                f"       -/{r['pred_msgs']:<6}       -/{r['pred_time']:.5f}"
            )
            continue
        lines.append(
            f"{r['dist']:<22} ran     {r['bytes']:>8}/{r['pred_bytes']:<8}"
            f"  {r['msgs']:>6}/{r['pred_msgs']:<6} {r['time']:>9.5f}/{r['pred_time']:.5f}"
        )
        assert r["same"]
        assert r["agree"], f"prediction disagreed with execution for {r['dist']}"
    n_pruned = len(pruned)
    lines.append(
        f"estimator pruned {n_pruned}/{len(rows)} configurations before execution; "
        "executed volumes matched predictions exactly"
    )
    report("C3", "Section 2: estimator-pruned distribution tuning", lines)


def test_distribution_tuning(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check_and_report(rows)


if __name__ == "__main__":
    check_and_report(run())
