"""C3 -- Section 2 claim: distribution tuning is a declaration change.

"Note that the body of the doall loop here is independent of the
distribution of the array X and of the processor array P. Thus a
variety of distribution patterns can be tried by simple modifications
of this program."  We run the identical Jacobi program under several
distribution clauses, verify unchanged numerics, and report the
communication each clause induces -- together with the static
performance-estimator's prediction (the tool section 2 promises), which
must agree with the executed trace.
"""

import numpy as np

from benchmarks._report import report
from repro.compiler import clear_plan_cache, estimate_doall
from repro.lang import DistArray, ProcessorGrid
from repro.machine import CostModel, Machine
from repro.tensor.jacobi import build_jacobi_loop, jacobi_kf1


def run(n=32, iters=4):
    rng = np.random.default_rng(10)
    f = 1e-3 * rng.standard_normal((n + 1, n + 1))
    f[0] = f[-1] = 0.0
    f[:, 0] = f[:, -1] = 0.0
    cost = CostModel.hypercube_1989()
    configs = [
        (("block", "block"), (2, 2)),
        (("block", "*"), (4,)),
        (("*", "block"), (4,)),
        (("cyclic", "cyclic"), (2, 2)),
    ]
    rows = []
    base = None
    for dist, shape in configs:
        clear_plan_cache()
        machine = Machine(n_procs=4, cost=cost)
        grid = ProcessorGrid(shape)
        x, trace = jacobi_kf1(machine, grid, f, iters, dist=dist)
        if base is None:
            base = x
        # static prediction for one sweep of the same loop
        X = DistArray(f.shape, grid, dist=dist, name="X")
        F = DistArray(f.shape, grid, dist=dist, name="F")
        est = estimate_doall(build_jacobi_loop(X, F, n, grid))
        rows.append(
            {
                "dist": str(dist),
                "same": bool(np.allclose(x, base)),
                "bytes": trace.total_bytes(),
                "msgs": trace.message_count(),
                "pred_bytes": est.total_bytes() * iters,
                "pred_msgs": est.total_messages() * iters,
                "time": trace.makespan(),
            }
        )
    return rows


def test_distribution_tuning(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "distribution            same   bytes(run/pred)      msgs(run/pred)   time(s)"
    ]
    for r in rows:
        lines.append(
            f"{r['dist']:<22} {str(r['same']):>5}  {r['bytes']:>8}/{r['pred_bytes']:<8}"
            f"  {r['msgs']:>6}/{r['pred_msgs']:<6} {r['time']:>9.5f}"
        )
        assert r["same"]
        assert r["bytes"] == r["pred_bytes"]  # estimator is exact here
        assert r["msgs"] == r["pred_msgs"]
    # block beats cyclic for stencils (what the estimator should reveal)
    by = {r["dist"]: r for r in rows}
    assert by["('block', 'block')"]["bytes"] < by["('cyclic', 'cyclic')"]["bytes"]
    report("C3", "Section 2: distribution tuning + performance estimator", lines)
