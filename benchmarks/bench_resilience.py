"""RESILIENCE -- the self-healing drill: supervised recovery gates.

``repro.supervise`` claims a supervised run survives killed workers
with results bit-identical to an uninterrupted run, resuming each retry
from the latest mid-run checkpoint (never sweep 0), at a bounded
checkpointing cost.  This benchmark drills that claim unattended on
**both** backends and enforces it as hard gates (the ``--smoke`` CI
step runs a small size where wall-clock numbers mean nothing; the gates
are the point):

* multiprocessing drill -- ``repro.faults.kill_rank`` kills two ranks
  at worker sweep K, twice (each respawned pool restarts its sweep
  counter, so the same armed fault fires again K sweeps into the
  retry); the Supervisor must absorb both kills and finish;
* simulator drill -- a flaky backend wrapper tears scheduled run legs
  *after* mutating state, so bit-identity proves the checkpoint was
  actually restored;
* overhead -- a supervised fault-free run vs. the plain run on the
  simulator bounds what mid-run checkpoints cost
  (``overhead_factor <= OVERHEAD_BOUND``).

Output: ``benchmarks/results/RESILIENCE.txt`` (human table) and
``benchmarks/results/BENCH_resilience.json``.
"""

import os
import sys
import time

import numpy as np

try:
    from benchmarks._report import RESULTS_DIR, report, write_json
except ModuleNotFoundError:  # invoked as a script: python benchmarks/bench_...
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks._report import RESULTS_DIR, report, write_json

import repro
from repro import Machine, MachineError, Session, Supervisor, SupervisorPolicy, faults
from repro.machine.backend import Backend

JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_resilience.json")

#: a supervised fault-free run may cost at most this many times the
#: plain uninterrupted run (mid-run checkpoints are per-array diffs +
#: a data copy per leg; the bound is deliberately generous because the
#: smoke sizes run legs of microseconds)
OVERHEAD_BOUND = 5.0


def _jacobi_src(n):
    return f"""
processors procs(4)
real X(0:{n - 1}, 0:{n - 1}) dist (block, *)
real F(0:{n - 1}, 0:{n - 1}) dist (block, *)
doall (i, j) = [1, {n - 2}] * [1, {n - 2}] on owner(X(i, j))
  X(i, j) = 0.25*(X(i+1, j) + X(i-1, j) + X(i, j+1) + X(i, j-1)) - F(i, j)
end doall
"""


def _fresh(n, backend=None):
    sess = Session(Machine(n_procs=4), backend=backend)
    prog = repro.compile(_jacobi_src(n), session=sess)
    return sess, prog


def _policy(**kw):
    kw.setdefault("backoff_base", 0.005)
    kw.setdefault("jitter", 0.0)
    kw.setdefault("seed", 0)
    return SupervisorPolicy(**kw)


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


class _FlakyBackend(Backend):
    """Simulator delegate tearing scheduled run legs (state mutated,
    then ``MachineError``) -- the deterministic twin of a killed rank."""

    def __init__(self, machine, fail_on):
        self.machine = machine
        self.topology = machine.topology
        self.cost = machine.cost
        self.fail_on = set(fail_on)
        self.calls = 0

    def run(self, programs, ranks=None):
        call = self.calls
        self.calls += 1
        trace = self.machine.run(programs, ranks)
        if call in self.fail_on:
            err = MachineError(f"flaky backend: injected failure #{call}")
            err.failed_ranks = (1,)
            raise err
        return trace


def run(smoke=False):
    n, iters, every, kill_sweep = (18, 8, 2, 3) if smoke else (48, 16, 2, 3)
    rng = np.random.default_rng(11)
    f = 1e-3 * rng.standard_normal((n, n))
    x0 = np.zeros((n, n))

    # the uninterrupted reference (simulator = the reference semantics)
    ref_sess, ref_prog = _fresh(n)
    plain_s, _ = _timed(lambda: ref_prog.run(X=x0, F=f, iters=iters))
    want = ref_prog.arrays["X"].to_global().copy()

    # -- drill 1: multiprocessing backend, two real rank kills ----------
    mp_sess, mp_prog = _fresh(n, backend="multiprocessing")
    sup_mp = Supervisor(mp_sess, _policy(max_retries=4))
    completed_mp = identical_mp = False
    mp_s, recoveries_mp, resumed_mp = 0.0, 0, False
    try:
        with faults.kill_rank((1, 2), sweep=kill_sweep, times=2) as fault:
            mp_s, _ = _timed(lambda: sup_mp.run(
                mp_prog, X=x0, F=f, iters=iters, checkpoint_every=every,
            ))
        completed_mp = True
        identical_mp = bool(np.array_equal(
            mp_prog.arrays["X"].to_global(), want
        ))
        recoveries_mp = sup_mp.log.retries
        # every retry resumed from a checkpointed cursor, never sweep 0
        resumed_mp = (len(fault.fired) == 2
                      and all(e.sweep > 0 for e in sup_mp.log))
    finally:
        mp_sess.close_backend()

    # -- drill 2: simulator backend, torn legs ---------------------------
    sim_sess, sim_prog = _fresh(n)
    flaky = _FlakyBackend(sim_sess.machine, fail_on={1, 3})
    sup_sim = Supervisor(sim_sess, _policy(max_retries=4))
    sim_s, _ = _timed(lambda: sup_sim.run(
        sim_prog, X=x0, F=f, iters=iters, checkpoint_every=every,
        backend=flaky,
    ))
    identical_sim = bool(np.array_equal(
        sim_prog.arrays["X"].to_global(), want
    ))
    recoveries_sim = sup_sim.log.retries
    resumed_sim = (recoveries_sim == 2
                   and all(e.sweep > 0 for e in sup_sim.log))

    # -- overhead: supervised fault-free vs. plain (simulator) -----------
    ovh_sess, ovh_prog = _fresh(n)
    sup_ovh = Supervisor(ovh_sess, _policy())
    supervised_s, _ = _timed(lambda: sup_ovh.run(
        ovh_prog, X=x0, F=f, iters=iters, checkpoint_every=every,
    ))
    identical_ovh = bool(np.array_equal(
        ovh_prog.arrays["X"].to_global(), want
    ))
    overhead_factor = supervised_s / plain_s if plain_s > 0 else float("inf")

    gates = {
        "mp_run_completed": completed_mp,
        "mp_results_bit_identical": identical_mp,
        "mp_resumed_from_checkpoint": resumed_mp,
        "mp_recovered_twice": recoveries_mp == 2,
        "sim_results_bit_identical": identical_sim,
        "sim_resumed_from_checkpoint": resumed_sim,
        "supervised_faultfree_bit_identical": identical_ovh,
        "overhead_bounded": overhead_factor <= OVERHEAD_BOUND,
        "no_degradations": (sup_mp.log.degradations == 0
                            and sup_sim.log.degradations == 0),
    }
    payload = {
        "experiment": "RESILIENCE",
        "mode": "smoke" if smoke else "full",
        "n": n,
        "iters": iters,
        "checkpoint_every": every,
        "kill_sweep": kill_sweep,
        "recoveries": {"mp": recoveries_mp, "sim": recoveries_sim},
        "recovery_log_mp": [e.as_dict() for e in sup_mp.log],
        "recovery_log_sim": [e.as_dict() for e in sup_sim.log],
        "plain_run_s": plain_s,
        "supervised_faultfree_s": supervised_s,
        "supervised_mp_faulted_s": mp_s,
        "supervised_sim_faulted_s": sim_s,
        "overhead_factor": overhead_factor,
        "overhead_bound": OVERHEAD_BOUND,
        "gates": gates,
        "notes": (
            "The drill: an iters-sweep Jacobi run under the Supervisor "
            "with incremental checkpoints every `checkpoint_every` "
            "sweeps.  On the multiprocessing backend, repro.faults kills "
            "ranks (1, 2) at worker sweep `kill_sweep` twice (the armed "
            "fault re-fires in the respawned pool); on the simulator, a "
            "flaky wrapper tears two run legs after mutating state.  "
            "Gated: both drills finish bit-identical to the "
            "uninterrupted reference, every retry resumes from a "
            "checkpointed sweep cursor > 0, and a fault-free supervised "
            "run costs at most OVERHEAD_BOUND x the plain run."
        ),
    }
    write_json("resilience", payload)

    lines = [
        f"n={n}, iters={iters}, checkpoint_every={every}, "
        f"kill at worker sweep {kill_sweep} (x2)",
        f"{'leg':<28} {'ms':>9}",
        f"{'plain run (simulator)':<28} {plain_s * 1e3:>9.2f}",
        f"{'supervised, fault-free':<28} {supervised_s * 1e3:>9.2f}   "
        f"(x{overhead_factor:.2f} <= x{OVERHEAD_BOUND:.1f})",
        f"{'supervised, 2 mp kills':<28} {mp_s * 1e3:>9.2f}   "
        f"({recoveries_mp} recoveries)",
        f"{'supervised, 2 torn sim legs':<28} {sim_s * 1e3:>9.2f}   "
        f"({recoveries_sim} recoveries)",
        "gates: " + ", ".join(
            f"{k}={'PASS' if v else 'FAIL'}" for k, v in gates.items()
        ),
        f"json: {os.path.relpath(JSON_PATH)}",
    ]
    report("RESILIENCE", "self-healing drill: supervised recovery gates",
           lines)

    ok = all(gates.values())
    if not ok:
        failed = [k for k, v in gates.items() if not v]
        print("SMOKE FAIL: resilience drill gate(s) failed: "
              + ", ".join(failed), file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(run(smoke="--smoke" in sys.argv))
