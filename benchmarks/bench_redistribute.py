"""REPART -- owner-to-owner repartition schedules vs. gather-to-all.

The seed's ``DistArray.redistribute`` assembled the full global array
on every relayout (``to_global``/``from_global``).  The TransferSchedule
subsystem replaces that with an owner-to-owner repartition: each rank
sends only the intersections of its old block with the new owners'
blocks, and the schedule -- keyed on the (from-layout, to-layout) pair,
not the comm epoch -- is cached, so the repeated layout flips of e.g.
an ADI-style row/column sweep replay without re-deriving any move.

This benchmark flips a block layout to cyclic and back ``flips`` times
under both strategies and reports message counts, byte volumes, and
simulated makespan.  Acceptance: the schedule path moves strictly fewer
bytes, finishes in less simulated time, and replays from cache on every
flip after the first pair.
"""

import os
import sys

import numpy as np

try:
    from benchmarks._report import report
except ModuleNotFoundError:  # invoked as a script: python benchmarks/bench_...
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks._report import report
from repro.lang import DistArray, ProcessorGrid
from repro.session import Session
from repro.lang.dist import Distribution
from repro.machine import Machine
from repro.machine.costmodel import CostModel
from repro.machine.ops import Barrier


def _layout_cycle(flips):
    return [("cyclic",) if k % 2 == 0 else ("block",) for k in range(flips)]


def _run_scheduled(p, n, flips):
    machine = Machine(n_procs=p, cost=CostModel.hypercube_1989())
    grid = ProcessorGrid((p,))
    A = DistArray((n,), grid, dist=("block",), name="A")
    A.from_global(np.sin(np.arange(n) * 0.05))
    session = Session(machine, grid)

    def prog(ctx):
        for dist in _layout_cycle(flips):
            yield from ctx.redistribute(A, dist)

    trace = session.run(prog)
    return A, trace, session.cache


def _run_gather_to_all(p, n, flips):
    """The seed strategy, spelled as messages: every flip gathers all
    blocks to a root, assembles the global array, broadcasts it, and
    re-slices every rank's new block from the full copy."""
    machine = Machine(n_procs=p, cost=CostModel.hypercube_1989())
    grid = ProcessorGrid((p,))
    A = DistArray((n,), grid, dist=("block",), name="A")
    A.from_global(np.sin(np.arange(n) * 0.05))

    def prog(ctx):
        me = ctx.rank
        root = grid.linear[0]
        for step, dist in enumerate(_layout_cycle(flips)):
            target = Distribution(dist, A.shape, grid.shape)
            blocks = yield from ctx.gather(
                grid, np.ascontiguousarray(A.local(me)), root=root
            )
            if me == root:
                full = np.zeros(A.shape, dtype=A.dtype)
                for rank, block in zip(grid.linear, blocks):
                    full[np.ix_(*A.owned_lists(rank))] = block
            else:
                full = None
            full = yield from ctx.bcast(grid, full, root=root)
            mine = target.owned_lists(grid.coords_of(me))
            A._stage_repartition(
                me, np.ascontiguousarray(full[np.ix_(*mine)]), ("g2a", step)
            )
            yield Barrier(group=tuple(grid.linear), tag=("g2a", step))
            A._commit_repartition(target, ("g2a", step))

    trace = Session(machine, grid).run(prog)
    return A, trace


def run(p=8, n=512, flips=6):
    a_sched, t_sched, cache = _run_scheduled(p, n, flips)
    a_g2a, t_g2a = _run_gather_to_all(p, n, flips)

    identical = bool(np.array_equal(a_sched.to_global(), a_g2a.to_global()))
    return {
        "p": p,
        "n": n,
        "flips": flips,
        "identical": identical,
        "msgs_sched": t_sched.message_count(),
        "msgs_g2a": t_g2a.message_count(),
        "bytes_sched": t_sched.total_bytes(),
        "bytes_g2a": t_g2a.total_bytes(),
        "byte_ratio": t_g2a.total_bytes() / t_sched.total_bytes(),
        "time_sched": t_sched.makespan(),
        "time_g2a": t_g2a.makespan(),
        "hit_rate": t_sched.schedule_hit_rate("repartition"),
        "cache": cache.stats(),
    }


def check_and_report(r):
    assert r["identical"], "repartition changed the array values"
    assert r["bytes_sched"] < r["bytes_g2a"], (
        f"owner-to-owner moved {r['bytes_sched']} bytes, gather-to-all "
        f"{r['bytes_g2a']}"
    )
    assert r["time_sched"] < r["time_g2a"]
    # two distinct transitions build; every later flip replays from cache
    expected_hit = (r["flips"] - 2) / r["flips"]
    assert abs(r["hit_rate"] - expected_hit) < 1e-9
    report(
        "REPART",
        "owner-to-owner repartition schedules vs. gather-to-all relayout",
        [
            f"p={r['p']}, n={r['n']}, flips={r['flips']}",
            f"messages: gather-to-all {r['msgs_g2a']}, "
            f"scheduled {r['msgs_sched']}",
            f"bytes:    gather-to-all {r['bytes_g2a']}, "
            f"scheduled {r['bytes_sched']}  ({r['byte_ratio']:.2f}x fewer)",
            f"sim time: gather-to-all {r['time_g2a']:.6g}s, "
            f"scheduled {r['time_sched']:.6g}s "
            f"({r['time_g2a'] / r['time_sched']:.2f}x faster)",
            f"repartition hit rate {r['hit_rate']:.3f}, cache {r['cache']}",
            f"results identical: {r['identical']}",
        ],
    )


def test_redistribute_benchmark(benchmark):
    r = benchmark.pedantic(run, rounds=1, iterations=1)
    check_and_report(r)


if __name__ == "__main__":
    check_and_report(run())
