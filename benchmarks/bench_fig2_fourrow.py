"""F2 -- Figure 2: reduction of four rows of a tridiagonal system to two.

At each tree step every active processor receives two boundary pairs
(four adjacent reduced rows) and eliminates the middle two, so the pair
count halves.  This benchmark performs the four-row reduction across a
whole level and checks that the surviving rows still solve to the true
solution values -- the invariant Figure 2 depicts.
"""

import numpy as np

from benchmarks._report import dominant_system, report
from repro.kernels.substructured import (
    local_reduce,
    reduce_four_rows,
    solve_reduced_pairs,
)
from repro.kernels.thomas import thomas_solve


def run(n=512, p=16):
    b, a, c, f = dominant_system(n, seed=2)
    m = n // p
    x_true = thomas_solve(b, a, c, f)
    pairs = []
    for q in range(p):
        sl = slice(q * m, (q + 1) * m)
        pairs.append(local_reduce(b[sl], a[sl], c[sl], f[sl]))
    level_sizes = [2 * p]
    cur = [(r.first, r.last) for r in pairs]
    boundaries = [(q * m, (q + 1) * m - 1) for q in range(p)]
    ok = True
    while len(cur) > 2:
        nxt = []
        nxt_bounds = []
        for j in range(0, len(cur), 2):
            first, last, saved = reduce_four_rows(cur[j], cur[j + 1])
            lo = boundaries[j][0]
            hi = boundaries[j + 1][1]
            # surviving pair must be satisfied by the true solution
            r1 = first[1] * x_true[lo] + first[2] * x_true[hi]
            if lo > 0:
                r1 += first[0] * x_true[lo - 1]
            r2 = last[0] * x_true[lo] + last[1] * x_true[hi]
            if hi < n - 1:
                r2 += last[2] * x_true[hi + 1]
            if abs(r1 - first[3]) > 1e-6 * max(1, abs(first[3])):
                ok = False
            if abs(r2 - last[3]) > 1e-6 * max(1, abs(last[3])):
                ok = False
            nxt.append((first, last))
            nxt_bounds.append((lo, hi))
        cur = nxt
        boundaries = nxt_bounds
        level_sizes.append(2 * len(cur))
    final = solve_reduced_pairs(cur)
    ok = ok and np.allclose(
        final,
        [x_true[boundaries[0][0]], x_true[boundaries[0][1]],
         x_true[boundaries[1][0]], x_true[boundaries[1][1]]],
        rtol=1e-6,
    )
    return {"sizes": level_sizes, "ok": ok}


def test_fig2_four_row_reduction(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result["ok"]
    sizes = result["sizes"]
    # each step halves the reduced system: 2p, p, p/2, ..., 4
    for a, b in zip(sizes, sizes[1:]):
        assert b == a // 2
    assert sizes[-1] == 4
    report(
        "F2",
        "Figure 2: four rows reduce to two, preserving the solution",
        [
            f"reduced-system sizes per step: {sizes}",
            f"all surviving rows satisfied by the true solution: {result['ok']}",
        ],
    )
