"""C1 -- Section 6 claim: "The message passing version of a program is
often five to ten times longer than the sequential version."

Measured on this codebase's implementations of the paper's Listings 1-3:
effective (non-blank, non-comment, docstring-stripped) lines of the
sequential Jacobi, the hand-written message-passing Jacobi (node program
plus driver -- everything the Listing 2 programmer must write), and the
KF1 version (loop construction plus driver).
"""

from benchmarks._report import report
from repro.baselines import jacobi_message_passing, jacobi_sequential, mp_jacobi_node
from repro.baselines.loc import loc_report
from repro.tensor.jacobi import build_jacobi_loop, jacobi_kf1


def run():
    return loc_report(
        {
            "sequential (Listing 1)": jacobi_sequential,
            "message passing (Listing 2)": [mp_jacobi_node, jacobi_message_passing],
            "kf1 (Listing 3)": [build_jacobi_loop, jacobi_kf1],
        }
    )


def test_program_length_ratio(benchmark):
    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    seq = counts["sequential (Listing 1)"]
    mp = counts["message passing (Listing 2)"]
    kf1 = counts["kf1 (Listing 3)"]
    ratio_mp = mp / seq
    ratio_kf1 = kf1 / seq
    lines = [
        f"{name:<30} {n:>4} effective LoC" for name, n in counts.items()
    ]
    lines.append(f"message-passing / sequential ratio: {ratio_mp:.1f}x "
                 "(paper: five to ten times)")
    lines.append(f"kf1 / sequential ratio:             {ratio_kf1:.1f}x")
    # the paper's shape: MP much longer than sequential; KF1 close to it
    assert ratio_mp >= 4.0
    assert kf1 < mp
    report("C1", "Section 6: program-length comparison", lines)
