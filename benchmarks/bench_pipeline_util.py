"""L6 -- Listing 6: pipelining keeps more of the processors busy.

"If we have to solve more than one tridiagonal system then these
computations can be pipelined so that more of the processors are kept
busy."  We sweep the number of systems m and report utilization and
makespan for the barrier-separated sequential driver (Listing 4 in a
loop) versus the pipelined driver (Listing 6).

The overlap columns report :meth:`Trace.overlap_fraction` -- the share
of compute time spent while messages were in flight to the computing
processor.  Pipelining earns its utilization exactly by raising this
overlap: while one system's values travel, the processors work on
another system.
"""

from benchmarks._report import dominant_systems, report
from repro.kernels.pipelined import (
    pipelined_multi_tri_solve,
    sequential_multi_tri_solve,
)
from repro.machine import CostModel, Machine


def run(p=16, n=1024, ms=(2, 8, 32)):
    cost = CostModel.hypercube_1989()
    rows = []
    for m in ms:
        B, A, C, F = dominant_systems(m, n, seed=8)
        _, t_seq = sequential_multi_tri_solve(
            B, A, C, F, p, machine=Machine(n_procs=p, cost=cost)
        )
        _, t_pipe = pipelined_multi_tri_solve(
            B, A, C, F, p, machine=Machine(n_procs=p, cost=cost)
        )
        rows.append(
            {
                "m": m,
                "seq_time": t_seq.makespan(),
                "pipe_time": t_pipe.makespan(),
                "seq_util": t_seq.utilization(),
                "pipe_util": t_pipe.utilization(),
                "seq_overlap": t_seq.overlap_fraction(),
                "pipe_overlap": t_pipe.overlap_fraction(),
            }
        )
    return rows


def test_pipeline_utilization(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "m    seq(s)      pipe(s)     seq_util  pipe_util"
        "  seq_ovlp  pipe_ovlp  speedup"
    ]
    for r in rows:
        lines.append(
            f"{r['m']:<4} {r['seq_time']:>10.5f} {r['pipe_time']:>11.5f}"
            f" {r['seq_util']:>9.2%} {r['pipe_util']:>9.2%}"
            f" {r['seq_overlap']:>9.2%} {r['pipe_overlap']:>9.2%}"
            f" {r['seq_time'] / r['pipe_time']:>8.2f}x"
        )
    for r in rows:
        assert r["pipe_util"] > r["seq_util"]
        assert r["pipe_time"] < r["seq_time"]
    # advantage grows with m
    assert rows[-1]["seq_time"] / rows[-1]["pipe_time"] > rows[0]["seq_time"] / rows[0]["pipe_time"]
    report("L6", "Listing 6: pipelined multi-system solver utilization", lines)
