"""F3 -- Figure 3: the data-flow graph of the substructured algorithm.

"During the reduction phase, the number of active processors is reduced
by two at each step, until finally we have just one active processor.
During the substitution phase, the number of active processors doubles
at each stage."  This benchmark regenerates those counts from the Mark
events in the simulator trace.
"""

from benchmarks._report import dominant_system, report
from repro.kernels.substructured import substructured_tri_solve


def run(n=1024, p=16):
    b, a, c, f = dominant_system(n, seed=3)
    _, trace = substructured_tri_solve(b, a, c, f, p)
    red = trace.active_procs_by_payload("tri/reduce")
    sub = trace.active_procs_by_payload("tri/subst")
    apex = trace.active_procs_by_payload("tri/apex")
    red_counts = {lvl: len(procs) for (s, lvl), procs in red.items()}
    sub_counts = {lvl: len(procs) for (s, lvl), procs in sub.items()}
    apex_counts = {lvl: len(procs) for (s, lvl), procs in apex.items()}
    return {"p": p, "red": red_counts, "sub": sub_counts, "apex": apex_counts}


def test_fig3_dataflow_graph(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    p = result["p"]
    red, sub = result["red"], result["sub"]
    lines = [f"p = {p}"]
    # reduction halves: level 0 -> p, level l -> p / 2^l
    expect = p
    for lvl in sorted(red):
        assert red[lvl] == expect, (lvl, red)
        lines.append(f"reduction step {lvl}: {red[lvl]} active processors")
        expect //= 2
    # apex: one processor
    (apex_count,) = result["apex"].values()
    assert apex_count == 1
    lines.append("apex solve: 1 active processor")
    # substitution doubles back to p
    expect = None
    for lvl in sorted(sub, reverse=True):
        if expect is None:
            expect = sub[lvl]
        assert sub[lvl] == expect
        lines.append(f"substitution step {lvl}: {sub[lvl]} active processors")
        expect *= 2
    assert sub[0] == p
    report("F3", "Figure 3: active processors halve then double", lines)
