"""PARALLEL -- real shared-memory speedup of the multiprocessing backend.

``bench_wallclock`` measures what compiling the replay buys a *single*
host process; this benchmark measures what the
:class:`~repro.machine.mpbackend.MultiprocessingBackend` buys by
executing the compiled sweeps on real forked worker processes over
shared-memory array storage.  The scenario is the paper's headline
workload -- the Listing-3 Jacobi stencil in steady-state replay -- run
three ways per worker count:

* ``sequential`` -- the Listing-1 single-process numpy baseline
  (:func:`repro.baselines.sequential.jacobi_sequential`);
* ``simulator``  -- the compiled replay on the event-driven reference
  simulator (one host process playing all ranks);
* ``parallel``   -- the same frozen program on the multiprocessing
  backend with one worker process per rank.

The backend's contract is that parallelism is *observationally free*:
array results, schedule accounting, and the cost-model-stamped trace
must be bit-identical to the simulator.  The benchmark verifies all
three on every worker count and fails if any diverges -- that check is
the whole point of ``--smoke`` (the CI gate), which runs tiny sizes
where wall-clock numbers mean nothing.

Real speedup needs real cores: the acceptance gate (>= 2x over the
sequential baseline on 4 workers) is enforced only when the host
actually exposes >= 4 usable CPUs (``os.sched_getaffinity``).  On
smaller hosts the numbers are still measured and recorded -- with
``host.cpus`` and a caveat in the JSON so a reader (or CI on a bigger
runner) can interpret them -- but a 1-core container cannot physically
demonstrate parallel speedup and the gate would only measure the
scheduler.

Output: ``benchmarks/results/PARALLEL.txt`` (human table) and
``benchmarks/results/BENCH_parallel.json`` (see docs/performance.md
for the schema).
"""

import os
import sys
import time

import numpy as np

try:
    from benchmarks._report import RESULTS_DIR, host_info, report, write_json
except ModuleNotFoundError:  # invoked as a script: python benchmarks/bench_...
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks._report import RESULTS_DIR, host_info, report, write_json

import repro
from repro import Machine, ProcessorGrid, Session
from repro.baselines.sequential import jacobi_sequential
from repro.lang import DistArray
from repro.tensor.jacobi import build_jacobi_loop

JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_parallel.json")

SPEEDUP_TARGET = 2.0
GATE_WORKERS = 4


def _trace_sig(trace):
    """Everything the two backends must agree on, bit for bit."""
    return (
        [(m.src, m.dst, m.tag, m.nbytes, m.t_send, m.t_arrive, m.t_recv)
         for m in trace.messages],
        [(m.proc, m.label, m.payload) for m in trace.marks],
        [(c.proc, c.start, c.end, c.label) for c in trace.computes],
        dict(trace.finish_times),
        trace.level,
        dict(trace.mark_counts),
    )


def _time_runs(run_once, reps):
    """Best (min) wall seconds of ``reps`` timed calls (first call warms)."""
    run_once()
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        run_once()
        samples.append(time.perf_counter() - t0)
    return min(samples)


def _jacobi_setup(n, w, f, backend):
    """A compiled Jacobi program on a ``w x 1`` grid, one rank per worker."""
    grid = ProcessorGrid((w, 1))
    X = DistArray((n + 1, n + 1), grid, dist=("block", "block"), name="X")
    F = DistArray((n + 1, n + 1), grid, dist=("block", "block"), name="F")
    F.from_global(f)
    sess = Session(Machine(n_procs=w), backend=backend)
    prog = repro.compile(build_jacobi_loop(X, F, n, grid), session=sess)
    return sess, prog, X


def _verified_run(sess, prog, X, f, iters):
    """Reset X, run once, return (result, trace signature, accounting)."""
    X.from_global(np.zeros_like(f))
    trace = prog.run(iters=iters)
    return (
        X.to_global().copy(),
        _trace_sig(trace),
        sess.plans.kind_stats()["doall"],
    )


def run(smoke=False):
    if smoke:
        reps, n, iters, worker_counts = 2, 24, 8, (2, 4)
    else:
        reps, n, iters, worker_counts = 3, 64, 30, (2, 4, 8)

    cpus = host_info()["cpus"]
    rng = np.random.default_rng(21)
    f = 1e-3 * rng.standard_normal((n + 1, n + 1))

    seq_result = [None]

    def seq_once():
        seq_result[0] = jacobi_sequential(f, iters)

    sequential_s = _time_runs(seq_once, reps)

    rows = {}
    all_identical = True
    for w in worker_counts:
        sim_sess, sim_prog, sim_X = _jacobi_setup(n, w, f, None)
        sim_s = _time_runs(lambda: sim_prog.run(iters=iters), reps)
        sim_out, sim_sig, sim_acct = _verified_run(sim_sess, sim_prog, sim_X, f, iters)

        mp_sess, mp_prog, mp_X = _jacobi_setup(n, w, f, "multiprocessing")
        par_s = _time_runs(lambda: mp_prog.run(iters=iters), reps)
        mp_out, mp_sig, mp_acct = _verified_run(mp_sess, mp_prog, mp_X, f, iters)
        mp_sess._mp_backend.close()

        identical_results = bool(np.array_equal(sim_out, mp_out))
        identical_traces = sim_sig == mp_sig
        identical_accounting = sim_acct == mp_acct
        # the distributed sweep is the same vectorized arithmetic as the
        # Listing-1 baseline, evaluated over partitioned index boxes, so
        # it agrees to rounding, not bitwise
        matches_baseline = bool(np.allclose(sim_out, seq_result[0]))
        all_identical = all_identical and identical_results and \
            identical_traces and identical_accounting and matches_baseline
        rows[str(w)] = {
            "simulator_s": sim_s,
            "parallel_s": par_s,
            "speedup_vs_sequential": sequential_s / par_s,
            "speedup_vs_simulator": sim_s / par_s,
            "identical_results": identical_results,
            "identical_traces": identical_traces,
            "identical_accounting": identical_accounting,
            "matches_sequential_baseline": matches_baseline,
        }

    gate_enforced = (not smoke) and cpus >= GATE_WORKERS
    gate_row = rows.get(str(GATE_WORKERS))
    gate_passed = (
        gate_row is not None
        and gate_row["speedup_vs_sequential"] >= SPEEDUP_TARGET
        if gate_enforced else None
    )
    payload = {
        "experiment": "PARALLEL",
        "mode": "smoke" if smoke else "full",
        "reps": reps,
        "n": n,
        "iters": iters,
        "sequential_s": sequential_s,
        "workers": rows,
        "all_identical": all_identical,
        "gate": {
            "speedup_target": SPEEDUP_TARGET,
            "workers": GATE_WORKERS,
            "enforced": gate_enforced,
            "passed": gate_passed,
            "reason": (
                "bit-identity only (smoke mode)" if smoke else
                f"host exposes {cpus} usable CPU(s); real parallel speedup "
                f"needs >= {GATE_WORKERS} cores, so only bit-identity is "
                "gated on this host" if not gate_enforced else
                f"host has {cpus} usable CPUs; speedup gate enforced"
            ),
        },
        "notes": (
            "speedup_vs_sequential = Listing-1 numpy baseline seconds / "
            "multiprocessing-backend seconds for one steady-state replayed "
            "run (plans frozen, worker pool warm).  Results, traces, and "
            "schedule accounting are compared bit-for-bit against the "
            "event-driven simulator on every worker count; the committed "
            "numbers are honest for the recorded host -- on a single-CPU "
            "container the workers time-share one core, so wall-clock "
            "speedup is not expected there."
        ),
    }
    write_json("parallel", payload)

    lines = [
        f"host: {cpus} usable CPU(s); sequential baseline "
        f"{sequential_s * 1e3:.2f} ms (n={n}, iters={iters})",
        f"{'workers':<8} {'sim ms':>9} {'parallel ms':>12} "
        f"{'vs seq':>7} {'vs sim':>7}  identical",
    ]
    for w, r in rows.items():
        ok = (r["identical_results"] and r["identical_traces"]
              and r["identical_accounting"])
        lines.append(
            f"{w:<8} {r['simulator_s'] * 1e3:>9.2f} "
            f"{r['parallel_s'] * 1e3:>12.2f} "
            f"{r['speedup_vs_sequential']:>6.2f}x "
            f"{r['speedup_vs_simulator']:>6.2f}x  {ok}"
        )
    lines.append(
        f"gate ({SPEEDUP_TARGET}x on {GATE_WORKERS} workers): "
        + ("PASS" if gate_passed else
           "FAIL" if gate_passed is False else
           f"not enforced -- {payload['gate']['reason']}")
    )
    lines.append(f"json: {os.path.relpath(JSON_PATH)}")
    report("PARALLEL", "real parallel speedup, multiprocessing backend", lines)

    ok = all_identical
    if not ok:
        print("SMOKE FAIL: multiprocessing backend diverged from the "
              "simulator (results, trace, or accounting)", file=sys.stderr)
    if gate_enforced and not gate_passed:
        print(f"FAIL: < {SPEEDUP_TARGET}x over sequential on "
              f"{GATE_WORKERS} workers with {cpus} CPUs", file=sys.stderr)
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(run(smoke="--smoke" in sys.argv))
