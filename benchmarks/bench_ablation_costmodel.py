"""A1 -- ablation: where parallel tridiagonal solving pays off.

Section 6 notes that the effectiveness of the constructs "will depend on
many factors, including the communications capabilities of
architectures."  This ablation sweeps the message startup latency alpha
and finds the crossover where the substructured parallel solver stops
beating the sequential Thomas algorithm -- the regime boundary a KF1
user would consult the performance estimator for.
"""

from benchmarks._report import dominant_system, report
from repro.kernels.substructured import substructured_tri_solve
from repro.machine import CostModel, Machine


def run(n=2048, p=16, alphas=(1e-6, 1e-5, 1e-4, 1e-3, 1e-2)):
    b, a, c, f = dominant_system(n, seed=20)
    rows = []
    for alpha in alphas:
        cost = CostModel(
            alpha=alpha, beta=1e-7, gamma_hop=alpha / 10, flop_time=1e-6,
            send_overhead=alpha / 2,
        )
        _, trace = substructured_tri_solve(
            b, a, c, f, p, machine=Machine(n_procs=p, cost=cost)
        )
        t_seq = cost.compute_time(8 * n)  # Thomas ~ 8n flops
        rows.append(
            {
                "alpha": alpha,
                "parallel": trace.makespan(),
                "sequential": t_seq,
                "speedup": t_seq / trace.makespan(),
            }
        )
    return rows


def test_costmodel_crossover(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["alpha(s)   parallel(s)   sequential(s)   speedup"]
    for r in rows:
        lines.append(
            f"{r['alpha']:<10.0e} {r['parallel']:>11.5f} {r['sequential']:>13.5f}"
            f" {r['speedup']:>9.2f}"
        )
    # cheap communication: clear win; expensive: sequential wins
    assert rows[0]["speedup"] > 4.0
    assert rows[-1]["speedup"] < 1.0
    # speedup decreases monotonically with alpha
    sp = [r["speedup"] for r in rows]
    assert all(x >= y for x, y in zip(sp, sp[1:]))
    report(
        "A1",
        "Ablation: parallel-vs-sequential crossover in message latency",
        lines,
    )
