"""L78 -- Listings 7-8: ADI with non-pipelined vs pipelined line solves.

Both variants compute identical iterates (the restructuring only
reschedules work); the pipelined variant is faster -- "One can get
better speed-ups with the pipelined version of the tridiagonal solver."
"""

import numpy as np

from benchmarks._report import report
from repro.compiler import clear_plan_cache
from repro.lang import ProcessorGrid
from repro.machine import CostModel, Machine
from repro.tensor.adi import adi_reference, adi_solve
from repro.tensor.poisson import manufactured_2d


def run(n=32, iters=2, shape=(4, 4)):
    _, f = manufactured_2d(n)
    cost = CostModel.hypercube_1989()
    ref = adi_reference(f, iters=iters)
    out = {}
    for pipelined in (False, True):
        clear_plan_cache()
        machine = Machine(n_procs=int(np.prod(shape)), cost=cost)
        u, trace = adi_solve(
            machine, ProcessorGrid(shape), f, iters=iters, pipelined=pipelined
        )
        out[pipelined] = {
            "err": float(np.max(np.abs(u - ref))),
            "time": trace.makespan(),
            "util": trace.utilization(),
            "msgs": trace.message_count(),
        }
    return out


def test_adi_pipelined_vs_plain(benchmark):
    out = benchmark.pedantic(run, rounds=1, iterations=1)
    plain, pipe = out[False], out[True]
    assert plain["err"] < 1e-12 and pipe["err"] < 1e-12
    assert pipe["time"] < plain["time"]
    assert pipe["util"] > plain["util"]
    report(
        "L78",
        "Listings 7-8: ADI, per-line vs pipelined tridiagonal solves",
        [
            "variant      time(s)    util     msgs   max|u - reference|",
            f"per-line   {plain['time']:>9.5f} {plain['util']:>8.2%}"
            f" {plain['msgs']:>6}   {plain['err']:.1e}",
            f"pipelined  {pipe['time']:>9.5f} {pipe['util']:>8.2%}"
            f" {pipe['msgs']:>6}   {pipe['err']:.1e}",
            f"speedup from pipelining: {plain['time'] / pipe['time']:.2f}x",
        ],
    )
