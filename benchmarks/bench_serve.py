"""SERVE -- program-as-a-service: batched ensembles + concurrent serving.

Two claims of the serving layer (:mod:`repro.serve`,
``Program.run_batch``) are measured on the paper's steady-state Jacobi
replay workload:

* **Batched ensemble execution.** Running one frozen Program over B
  parameter bindings as a single batched sweep
  (``Program.run_batch``) versus B steady-state ``run`` calls.  The
  batched path replays each schedule once per sweep with batch-widened
  payload slots, so the per-run fixed costs (launch, schedule replay
  drive, per-sweep python) amortize across the ensemble while message
  *counts* stay identical.  Bit-identity of the two paths' results and
  equality of their per-sweep wire message counts are verified on every
  run -- divergence fails the benchmark in any mode.  Full mode
  additionally gates batched speedup >= 3x at B = 8 (this is
  python-overhead amortization, not parallelism: it holds on any host).

* **Concurrent serving throughput.** A :class:`~repro.serve.Server`
  front end admits R requests round-robin over K distinct compiled
  Programs at 1 / 4 / 16 worker threads, every session sharing one
  thread-safe ScheduleCache / PlanCache.  Requests/second, p50/p99
  latency, and the shared doall plan-cache hit rate under churn are
  recorded per thread count.  The 4-thread > 1-thread throughput gate
  is enforced only in full mode on hosts exposing >= 4 usable CPUs
  (``os.sched_getaffinity``), like ``bench_parallel``: on a 1-CPU
  container the threads time-share one core and the numbers -- still
  recorded honestly -- measure the scheduler, not the serving layer.

Output: ``benchmarks/results/SERVE.txt`` (human table) and
``benchmarks/results/BENCH_serve.json`` (see docs/performance.md for
the schema).
"""

import os
import sys
import time

import numpy as np

try:
    from benchmarks._report import RESULTS_DIR, host_info, report, write_json
except ModuleNotFoundError:  # invoked as a script: python benchmarks/bench_...
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks._report import RESULTS_DIR, host_info, report, write_json

import repro
from repro import Machine, ProcessorGrid, Session
from repro.lang import DistArray
from repro.serve import Server
from repro.tensor.jacobi import build_jacobi_loop

JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_serve.json")

BATCH_SPEEDUP_TARGET = 3.0
BATCH_SIZE = 8
GATE_THREADS = 4


def _time_runs(run_once, reps):
    """Best (min) wall seconds of ``reps`` timed calls (first call warms)."""
    run_once()
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        run_once()
        samples.append(time.perf_counter() - t0)
    return min(samples)


def _jacobi_loop(n, p=2):
    """The 2-D Jacobi doall on fresh arrays over a ``p x 1`` grid."""
    grid = ProcessorGrid((p, 1))
    X = DistArray((n + 1, n + 1), grid, dist=("block", "block"), name="X")
    F = DistArray((n + 1, n + 1), grid, dist=("block", "block"), name="F")
    return build_jacobi_loop(X, F, n, grid)


def _jacobi_program(n, p=2):
    """A compiled 2-D Jacobi program in its own Session."""
    return repro.compile(_jacobi_loop(n, p), session=Session(Machine(n_procs=p)))


# ----------------------------------------------------------------------
# Part A: batched ensemble vs per-binding loop
# ----------------------------------------------------------------------


def bench_batched(n, iters, nb, reps):
    """Time (and verify) run_batch against the per-binding run loop.

    The bindings load *every* array of the program (X zeroed, F per
    member), so a plain ``run(**b)`` per member is a complete restore
    -- both paths start each member from identical state by
    construction, and their results must be bit-identical.
    """
    rng = np.random.default_rng(7)
    zeros = np.zeros((n + 1, n + 1))
    binds = [
        {"X": zeros, "F": 1e-3 * rng.standard_normal((n + 1, n + 1))}
        for _ in range(nb)
    ]

    batched_prog = _jacobi_program(n)
    looped_prog = _jacobi_program(n)

    def looped_once():
        for b in binds:
            looped_prog.run(iters=iters, **b)

    def batched_once():
        batched_prog.run_batch(binds, iters=iters)

    looped_s = _time_runs(looped_once, reps)
    batched_s = _time_runs(batched_once, reps)

    # verification run: bit-identity member by member + message parity
    res = batched_prog.run_batch(binds, iters=iters)
    identical = True
    for b in range(nb):
        trace_1 = looped_prog.run(iters=iters, **binds[b])
        identical = identical and np.array_equal(
            res["X"][b], looped_prog.arrays["X"].to_global()
        )
    same_msgs = len(res.trace.messages) == len(trace_1.messages)

    return {
        "bindings": nb,
        "iters": iters,
        "looped_s": looped_s,
        "batched_s": batched_s,
        "speedup": looped_s / batched_s,
        "identical_results": bool(identical),
        "identical_message_counts": bool(same_msgs),
        "messages_per_run": len(res.trace.messages),
    }


# ----------------------------------------------------------------------
# Part B: concurrent serving throughput
# ----------------------------------------------------------------------


def bench_serving(n, iters, programs, requests, thread_counts):
    """Requests/second and latency percentiles per worker-thread count.

    Each thread count gets a fresh Server (fresh shared caches), K
    distinct Programs compiled from the same source -- K compiles, then
    pure churn: R requests round-robin over the K programs, every
    session replaying from the one shared PlanCache.
    """
    rng = np.random.default_rng(11)
    f = 1e-3 * rng.standard_normal((n + 1, n + 1))
    zeros = np.zeros((n + 1, n + 1))
    rows = {}
    for t in thread_counts:
        # the load generator pre-enqueues every request, so opt into a
        # queue deep enough to hold the whole burst (the admission
        #-control default would reject the excess -- by design)
        with Server(machine=Machine(n_procs=2), threads=t,
                    max_queue=requests) as srv:
            progs = [srv.compile(_jacobi_loop(n)) for _ in range(programs)]
            # warm: one request per program (plans were compiled above;
            # this warms the thread pool and any lazy per-rank plans)
            for p in progs:
                srv.run(p, X=zeros, F=f, iters=iters)
            t0 = time.perf_counter()
            futs = [
                srv.submit(progs[k % programs], X=zeros, F=f, iters=iters)
                for k in range(requests)
            ]
            for fut in futs:
                fut.result()
            wall = time.perf_counter() - t0
            st = srv.stats()
        rows[str(t)] = {
            "requests": requests,
            "wall_s": wall,
            "requests_per_s": requests / wall,
            "p50_ms": st["latency"]["p50"] * 1e3,
            "p99_ms": st["latency"]["p99"] * 1e3,
            "failures": st["failures"],
            "doall_hit_rate": st["hit_rates"].get("doall", 0.0),
        }
    return rows


def run(smoke=False):
    if smoke:
        reps, n, iters = 2, 16, 4
        programs, requests, thread_counts = 2, 12, (1, 4)
    else:
        # steady-state replay regime (the paper's compile-once/run-forever
        # sweep loop): many sweeps over a moderate grid, where the
        # per-run replay drive is the cost batching amortizes
        reps, n, iters = 3, 24, 30
        programs, requests, thread_counts = 4, 64, (1, 4, 16)

    cpus = host_info()["cpus"]
    batch = bench_batched(n, iters, BATCH_SIZE, reps)
    serving = bench_serving(n, iters, programs, requests, thread_counts)

    correct = batch["identical_results"] and batch["identical_message_counts"]
    not_slower = batch["speedup"] >= 1.0
    batch_gate_passed = (
        correct and batch["speedup"] >= BATCH_SPEEDUP_TARGET
        if not smoke else correct and not_slower
    )
    thr_enforced = (not smoke) and cpus >= GATE_THREADS
    one, four = serving.get("1"), serving.get(str(GATE_THREADS))
    thr_passed = (
        four["requests_per_s"] > one["requests_per_s"]
        if thr_enforced and one and four else None
    )

    payload = {
        "experiment": "SERVE",
        "mode": "smoke" if smoke else "full",
        "reps": reps,
        "n": n,
        "batch": batch,
        "serving": {
            "programs": programs,
            "threads": serving,
        },
        "gates": {
            "batched": {
                "speedup_target": BATCH_SPEEDUP_TARGET,
                "bindings": BATCH_SIZE,
                "enforced": not smoke,
                "passed": bool(batch_gate_passed),
                "reason": (
                    "smoke gates bit-identity, message parity, and "
                    "batched-not-slower-than-looped" if smoke else
                    f"batched ensemble must be >= {BATCH_SPEEDUP_TARGET}x "
                    f"the per-binding loop at {BATCH_SIZE} bindings"
                ),
            },
            "throughput": {
                "threads": GATE_THREADS,
                "enforced": thr_enforced,
                "passed": thr_passed,
                "reason": (
                    "throughput not gated in smoke mode" if smoke else
                    f"host exposes {cpus} usable CPU(s); concurrent "
                    f"throughput needs >= {GATE_THREADS} cores, so the "
                    "4-thread > 1-thread gate is not enforced on this "
                    "host (numbers recorded honestly)"
                    if not thr_enforced else
                    f"host has {cpus} usable CPUs; 4-thread > 1-thread "
                    "throughput gate enforced"
                ),
            },
        },
        "notes": (
            "batch.speedup = per-binding loop seconds / run_batch seconds "
            "for one steady-state ensemble (plans frozen); results are "
            "compared bit-for-bit and wire message counts must match a "
            "single run exactly.  serving rows are requests/second over "
            "R concurrent requests round-robin across K distinct "
            "Programs on one Server whose pooled sessions share a "
            "thread-safe ScheduleCache/PlanCache; doall_hit_rate is the "
            "shared plan cache's replay rate under that churn."
        ),
    }
    write_json("serve", payload)

    lines = [
        f"host: {cpus} usable CPU(s); jacobi n={n}, iters={iters}",
        f"batched ensemble (B={BATCH_SIZE}): looped "
        f"{batch['looped_s'] * 1e3:.2f} ms, batched "
        f"{batch['batched_s'] * 1e3:.2f} ms -> {batch['speedup']:.2f}x, "
        f"identical={batch['identical_results']}, "
        f"msg-parity={batch['identical_message_counts']}",
        f"{'threads':<8} {'req/s':>8} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'hit rate':>9}",
    ]
    for t, r in serving.items():
        lines.append(
            f"{t:<8} {r['requests_per_s']:>8.1f} {r['p50_ms']:>8.2f} "
            f"{r['p99_ms']:>8.2f} {r['doall_hit_rate']:>9.3f}"
        )
    lines.append(
        f"batched gate ({BATCH_SPEEDUP_TARGET}x at B={BATCH_SIZE}): "
        + ("PASS" if batch_gate_passed else "FAIL")
    )
    lines.append(
        f"throughput gate ({GATE_THREADS} > 1 threads): "
        + ("PASS" if thr_passed else
           "FAIL" if thr_passed is False else
           f"not enforced -- {payload['gates']['throughput']['reason']}")
    )
    lines.append(f"json: {os.path.relpath(JSON_PATH)}")
    report("SERVE", "batched ensembles + concurrent serving", lines)

    ok = True
    if not correct:
        print("SMOKE FAIL: run_batch diverged from the per-binding loop "
              "(results or wire message counts)", file=sys.stderr)
        ok = False
    if not batch_gate_passed:
        print(f"FAIL: batched ensemble gate not met "
              f"(speedup {batch['speedup']:.2f}x)", file=sys.stderr)
        ok = False
    if thr_enforced and not thr_passed:
        print(f"FAIL: {GATE_THREADS}-thread throughput did not exceed "
              f"1-thread with {cpus} CPUs", file=sys.stderr)
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(run(smoke="--smoke" in sys.argv))
