"""WALL -- real (host) seconds per steady-state replayed run.

Every earlier benchmark measures *simulated* time: message counts,
bytes, modeled makespans.  This one measures what the compiled replay
fast path actually buys on the host: wall-clock seconds per
``Program.run`` once the schedules and step plans are warm, with
``compiled=True`` (frozen per-rank StepPlans -- prebound numpy calls,
no per-sweep cache probe or AST walk) against ``compiled=False`` (the
interpreted reference executor).  Both executors produce bit-identical
results and traces -- the benchmark verifies that on every scenario --
so the ratio is pure interpreter overhead stripped from the hot loop.

Scenarios (the doall content of the paper's workloads):

* ``jacobi``     -- the Listing-3 five-point stencil, the headline;
* ``adi``        -- ADI's defect-correction sweeps (residual + update
                    doalls; the tridiagonal line solves are hand-written
                    kernels outside the doall path and excluded);
* ``multigrid``  -- the finest-level zebra relaxation rhs loops plus the
                    residual loop of the 2-D multigrid solver;
* ``redistribute`` -- block<->cyclic layout flips with stencil sweeps in
                    each layout: repartition schedules replay (layout-
                    pair keyed), while every flip deliberately orphans
                    the doall plans (epoch-keyed), so this measures the
                    fast path when plans must be *rebuilt* mid-run --
                    the stale-plan guard under timing pressure.

Output: ``benchmarks/results/WALL.txt`` (human table) and
``benchmarks/results/BENCH_wallclock.json`` (the perf trajectory
artifact; see docs/performance.md for how to read it).

Acceptance: steady-state replay (the geometric mean over the three
pure-replay scenarios) is >= 3x faster compiled than interpreted, with
bit-identical results and traces everywhere.  ``--smoke`` runs tiny
sizes and exits nonzero if compiled replay is slower than interpreted
on the jacobi scenario (the CI gate).
"""

import os
import sys
import time

import numpy as np

try:
    from benchmarks._report import RESULTS_DIR, report, write_json
except ModuleNotFoundError:  # invoked as a script: python benchmarks/bench_...
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks._report import RESULTS_DIR, report, write_json

import repro
from repro import Machine, ProcessorGrid, Session
from repro.lang import Assign, DistArray, Doall, Owner, loopvars
from repro.tensor.adi import _build_residual_loop, _build_update_loop, default_tau
from repro.tensor.jacobi import build_jacobi_loop
from repro.tensor.multigrid2d import MG2
from repro.tensor.poisson import Coeffs2D

JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_wallclock.json")


def _trace_sig(trace):
    """Everything that must be bit-identical between the two executors."""
    return (
        [(m.src, m.dst, m.tag, m.nbytes, m.t_send, m.t_arrive, m.t_recv)
         for m in trace.messages],
        [(m.proc, m.label, m.payload) for m in trace.marks],
        [(c.proc, c.start, c.end, c.label) for c in trace.computes],
    )


def _time_runs(run_once, reps):
    """Best (min) wall seconds of ``reps`` timed calls (first call warms).

    The minimum is the standard estimator for wall-clock benchmarks
    (``timeit`` uses it): scheduler noise and background load only ever
    *add* time, so the fastest observation is the closest to the true
    cost of the work.
    """
    run_once()
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        run_once()
        samples.append(time.perf_counter() - t0)
    return min(samples)


def _measure(make_runner, reps):
    """Time one scenario in both executor modes and check equivalence.

    ``make_runner(compiled)`` must return ``(run_once, result)`` where
    ``run_once()`` performs one steady-state replayed run and
    ``result()`` returns ``(arrays, trace)`` of a final verification
    run.  Returns a result-row dict.
    """
    t_compiled = _time_runs(make_runner(True)[0], reps)
    t_interp = _time_runs(make_runner(False)[0], reps)
    xa, ta = make_runner(True)[1]()
    xb, tb = make_runner(False)[1]()
    identical = all(np.array_equal(a, b) for a, b in zip(xa, xb))
    trace_identical = _trace_sig(ta) == _trace_sig(tb)
    return {
        "compiled_s": t_compiled,
        "interpreted_s": t_interp,
        "speedup": t_interp / t_compiled,
        "messages": ta.message_count(),
        "bytes": ta.total_bytes(),
        "identical_results": bool(identical),
        "identical_traces": bool(trace_identical),
    }


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------


def scenario_jacobi(n, p, iters):
    f = 1e-3 * np.random.default_rng(11).standard_normal((n + 1, n + 1))

    def make(compiled):
        grid = ProcessorGrid((p, p))
        X = DistArray((n + 1, n + 1), grid, dist=("block", "block"), name="X")
        F = DistArray((n + 1, n + 1), grid, dist=("block", "block"), name="F")
        F.from_global(f)
        sess = Session(Machine(n_procs=p * p), compiled=compiled)
        prog = repro.compile(build_jacobi_loop(X, F, n, grid), session=sess)

        def run_once():
            prog.run(iters=iters)

        def result():
            X.from_global(np.zeros_like(f))
            trace = prog.run(iters=iters)
            return (X.to_global(),), trace

        return run_once, result

    return make


def scenario_adi(n, p, iters):
    coeffs = Coeffs2D()
    tau = default_tau(n, coeffs)
    h2 = (1.0 / n) ** 2
    f = 1e-3 * np.random.default_rng(12).standard_normal((n + 1, n + 1))

    def make(compiled):
        grid = ProcessorGrid((p, p))
        dist = ("block", "block")
        u = DistArray(f.shape, grid, dist=dist, name="u")
        F = DistArray(f.shape, grid, dist=dist, name="F")
        r = DistArray(f.shape, grid, dist=dist, name="r")
        v = DistArray(f.shape, grid, dist=dist, name="v")
        F.from_global(f)
        v.from_global(0.1 * f)
        sess = Session(Machine(n_procs=p * p), compiled=compiled)
        loops = [
            _build_residual_loop(r, u, F, n, h2, h2, coeffs, grid),
            _build_update_loop(u, v, n, tau, grid),
        ]
        prog = repro.compile(loops, session=sess)

        def run_once():
            prog.run(iters=iters)

        def result():
            u.from_global(np.zeros_like(f))
            trace = prog.run(iters=iters)
            return (u.to_global(), r.to_global()), trace

        return run_once, result

    return make


def scenario_multigrid(n, p, iters):
    f = 1e-3 * np.random.default_rng(13).standard_normal((n + 1, n + 1))

    def make(compiled):
        grid = ProcessorGrid((p,))
        u = DistArray(f.shape, grid, dist=("*", "block"), name="u2")
        F = DistArray(f.shape, grid, dist=("*", "block"), name="f2")
        F.from_global(f)
        u.from_global(0.01 * f)
        mg = MG2(u, F, grid, Coeffs2D())
        fine = mg.levels[0]
        loops = [lp for lp in (fine["zebra"]["even"], fine["zebra"]["odd"],
                               fine["resid"]) if lp is not None]
        sess = Session(Machine(n_procs=p), compiled=compiled)
        prog = repro.compile(loops, session=sess)

        def run_once():
            prog.run(iters=iters)

        def result():
            trace = prog.run(iters=iters)
            return (fine["tmp"].to_global(), fine["r"].to_global()), trace

        return run_once, result

    return make


def scenario_redistribute(n, p, flips, sweeps):
    f0 = np.arange(float(n + 1) * (n + 1)).reshape(n + 1, n + 1)

    def make(compiled):
        grid = ProcessorGrid((p,))
        u = DistArray(f0.shape, grid, dist=("*", "block"), name="u")
        v = DistArray(f0.shape, grid, dist=("*", "block"), name="v")
        u.from_global(f0)
        i, j = loopvars("i j")
        loop = Doall(
            vars=(i, j),
            ranges=[(1, n - 1), (1, n - 1)],
            on=Owner(v, (i, j)),
            body=[Assign(v[i, j], 0.5 * (u[i, j - 1] + u[i, j + 1]))],
            grid=grid,
        )
        sess = Session(Machine(n_procs=p), grid, compiled=compiled)

        def program(ctx):
            for flip in range(flips):
                spec = ("*", "cyclic") if flip % 2 == 0 else ("*", "block")
                yield from ctx.redistribute(u, spec)
                yield from ctx.redistribute(v, spec)
                for _ in range(sweeps):
                    yield from ctx.doall(loop)

        def run_once():
            sess.run(program)

        def result():
            trace = sess.run(program)
            return (u.to_global(), v.to_global()), trace

        return run_once, result

    return make


def geomean(xs):
    return float(np.exp(np.mean(np.log(xs))))


def run(smoke=False):
    if smoke:
        reps = 3
        scenarios = {
            "jacobi": (scenario_jacobi(24, 2, 10), True),
            "adi": (scenario_adi(24, 2, 6), True),
            "multigrid": (scenario_multigrid(16, 2, 6), True),
            "redistribute": (scenario_redistribute(16, 2, 4, 3), False),
        }
    else:
        reps = 7
        scenarios = {
            "jacobi": (scenario_jacobi(63, 2, 50), True),
            "adi": (scenario_adi(48, 2, 30), True),
            "multigrid": (scenario_multigrid(64, 4, 20), True),
            "redistribute": (scenario_redistribute(32, 4, 6, 4), False),
        }

    rows = {}
    for name, (make, _steady) in scenarios.items():
        rows[name] = _measure(make, reps)

    steady = [rows[n]["speedup"] for n, (_, s) in scenarios.items() if s]
    headline = geomean(steady)
    payload = {
        "experiment": "WALL",
        "mode": "smoke" if smoke else "full",
        "reps": reps,
        "scenarios": rows,
        "steady_state_speedup": headline,
        "all_identical": all(
            r["identical_results"] and r["identical_traces"] for r in rows.values()
        ),
        "notes": (
            "speedup = interpreted_s / compiled_s per steady-state replayed "
            "run; steady_state_speedup is the geometric mean over the "
            "pure-replay scenarios (jacobi/adi/multigrid).  The "
            "redistribute scenario intentionally orphans doall plans on "
            "every layout flip (epoch-keyed), so it measures compiled "
            "execution under plan rebuild, not pure replay."
        ),
    }
    write_json("wallclock", payload)

    lines = [
        f"{'scenario':<13} {'interp ms':>10} {'compiled ms':>12} "
        f"{'speedup':>8}  identical",
    ]
    for name, r in rows.items():
        lines.append(
            f"{name:<13} {r['interpreted_s'] * 1e3:>10.2f} "
            f"{r['compiled_s'] * 1e3:>12.2f} {r['speedup']:>7.2f}x  "
            f"{r['identical_results'] and r['identical_traces']}"
        )
    lines.append(
        f"steady-state replay speedup (geomean jacobi/adi/multigrid): "
        f"{headline:.2f}x"
    )
    lines.append(f"json: {os.path.relpath(JSON_PATH)}")
    report("WALL", "wall-clock per replayed run, compiled vs interpreted", lines)

    ok = payload["all_identical"]
    if smoke:
        ok = ok and rows["jacobi"]["speedup"] > 1.0
        if not ok:
            print("SMOKE FAIL: compiled replay slower than interpreted "
                  "on jacobi, or results diverged", file=sys.stderr)
    else:
        ok = ok and headline >= 3.0
        if not ok:
            print("FAIL: steady-state speedup below 3x or results diverged",
                  file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(run(smoke="--smoke" in sys.argv))
