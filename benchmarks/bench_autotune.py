"""AUTOTUNE -- calibrated prune-then-execute layout search, gated.

``repro.tune`` claims it can pick a data layout for a program using a
cost model *calibrated on this host* (``repro.calibrate``), executing
only a pruned frontier of the enumerated candidates.  This benchmark
runs that full loop -- calibrate, enumerate, predict, prune, execute,
rank -- on two kernels (the paper's Jacobi stencil and a two-sweep
ADI-style iteration) and enforces the three claims as hard gates, in
smoke and full modes alike:

* ``winner_not_slower``  -- the tuner's winner must measure no slower
  than the program's own (seed) layout in host seconds: tuning can
  refuse to move, but never picks a regression;
* ``within_budget``      -- candidate executions stop at the declared
  frontier budget, and that budget is at most ``FRONTIER_FRACTION``
  (25 %) of the enumeration: the search is prune-then-execute, not
  exhaustive;
* ``error_bounded``      -- mean relative predicted-vs-measured error
  over the executed frontier stays under ``ERROR_BOUND``: the
  calibrated model is an honest host-seconds predictor, not a ranking
  heuristic that happens to work.

Output: ``benchmarks/results/AUTOTUNE.txt`` (human table) and
``benchmarks/results/BENCH_autotune.json`` (see docs/tuning.md for how
to read it).
"""

import math
import os
import sys

import numpy as np

try:
    from benchmarks._report import RESULTS_DIR, report, write_json
except ModuleNotFoundError:  # invoked as a script: python benchmarks/bench_...
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks._report import RESULTS_DIR, report, write_json

import repro
from repro import Machine, Session

JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_autotune.json")

#: mean |predicted - measured| / predicted over the executed frontier.
#: Host timing on a shared CI runner is noisy, the workloads here are
#: sub-millisecond (replay overhead dominates compute), and the
#: calibration is fitted from 1-D micro-benchmarks, so the bound is
#: deliberately loose -- predictions must land within 2x of measured.
#: That catches a broken predictor (10x off), not scheduler jitter.
ERROR_BOUND = 1.0
#: the frontier budget must not exceed this share of the enumeration
FRONTIER_FRACTION = 0.25


def _jacobi_src(n):
    return f"""
processors procs(2, 2)
real X(0:{n}, 0:{n}) dist (block, block)
real F(0:{n}, 0:{n}) dist (block, block)
doall (i, j) = [1, {n - 1}] * [1, {n - 1}] on owner(X(i, j))
  X(i, j) = 0.25*(X(i+1, j) + X(i-1, j) + X(i, j+1) + X(i, j-1)) - F(i, j)
end doall
"""


def _adi_src(n):
    # the directional-sweep pair that makes layout choice a real
    # trade-off: a row layout ships ghosts in the y-sweep, a column
    # layout in the x-sweep, a 2-D grid in both
    return f"""
processors procs(2, 2)
real X(0:{n}, 0:{n}) dist (block, block)
real F(0:{n}, 0:{n}) dist (block, block)
doall (i, j) = [1, {n - 1}] * [1, {n - 1}] on owner(X(i, j))
  X(i, j) = 0.5*(X(i, j-1) + X(i, j+1)) - F(i, j)
end doall
doall (i, j) = [1, {n - 1}] * [1, {n - 1}] on owner(X(i, j))
  X(i, j) = 0.5*(X(i-1, j) + X(i+1, j)) - F(i, j)
end doall
"""


def _tune_kernel(name, src, n, cal, iters, reps, seed):
    sess = Session(Machine(n_procs=4))
    sess.calibration = cal
    prog = repro.compile(src, session=sess)
    rng = np.random.default_rng(seed)
    f = 1e-3 * rng.standard_normal((n + 1, n + 1))
    prog.arrays["X"].from_global(np.zeros((n + 1, n + 1)))
    prog.arrays["F"].from_global(f)
    result = repro.tune(prog, iters=iters, reps=reps)
    return result


def _kernel_row(name, result):
    budget_cap = max(1, math.floor(FRONTIER_FRACTION * result.n_enumerated))
    mean_err = result.mean_error()
    gates = {
        "winner_not_slower": bool(
            result.winner.measured is not None
            and result.seed.measured is not None
            and result.winner.measured <= result.seed.measured
        ),
        "within_budget": bool(
            result.n_executed <= result.budget
            and result.budget <= budget_cap
        ),
        "error_bounded": bool(mean_err is not None and mean_err <= ERROR_BOUND),
    }
    return {
        "n_enumerated": result.n_enumerated,
        "n_executed": result.n_executed,
        "budget": result.budget,
        "budget_cap": budget_cap,
        "mode": result.mode,
        "mean_error": mean_err,
        "seed": result.seed.as_dict(),
        "winner": result.winner.as_dict(),
        "speedup_vs_seed": (
            result.seed.measured / result.winner.measured
            if result.winner.measured else None
        ),
        "candidates": [c.as_dict() for c in result.candidates],
        "gates": gates,
    }


def run(smoke=False):
    if smoke:
        n, iters, reps = 20, 2, 2
        cal_kw = dict(sizes=(2048, 8192), transfer_widths=(256, 2048),
                      transfer_arrays=(1, 2), iters=2, reps=2)
    else:
        n, iters, reps = 48, 4, 3
        cal_kw = {}

    cal = repro.calibrate(backend="simulator", **cal_kw)
    fit = cal.fit_report()
    r2 = dict(cal.r2)

    kernels = {}
    results = {}
    for name, src, seed in (
        ("jacobi", _jacobi_src(n), 31),
        ("adi", _adi_src(n), 32),
    ):
        results[name] = _tune_kernel(name, src, n, cal, iters, reps, seed)
        kernels[name] = _kernel_row(name, results[name])

    gates = {
        f"{k}_{g}": v
        for k, row in kernels.items() for g, v in row["gates"].items()
    }
    payload = {
        "experiment": "AUTOTUNE",
        "mode": "smoke" if smoke else "full",
        "n": n,
        "iters": iters,
        "reps": reps,
        "error_bound": ERROR_BOUND,
        "frontier_fraction": FRONTIER_FRACTION,
        "calibration": {
            "host": cal.host,
            "backend": cal.backend_name,
            "flop_time": cal.flop_time,
            "sweep_overhead": cal.sweep_overhead,
            "alpha": cal.alpha,
            "beta": cal.beta,
            "r2": r2,
            "n_samples": len(fit["samples"]),
        },
        "kernels": kernels,
        "gates": gates,
        "notes": (
            "Full autotune loop per kernel: repro.calibrate() fits a "
            "host-seconds CalibratedCostModel from micro-benchmarks, "
            "repro.tune() enumerates layouts, predicts all of them, and "
            "executes only the pruned frontier (budget <= "
            f"{FRONTIER_FRACTION:.0%} of the enumeration; the seed "
            "layout always executes as the baseline).  Gated: the "
            "measured winner is never slower than the seed, executions "
            "never exceed the budget, and mean |predicted-measured|/"
            f"predicted over the frontier stays under {ERROR_BOUND}.  "
            "measured_s are best-of-reps steady-state replays, so "
            "smoke-mode wall-clock numbers are honest but tiny."
        ),
    }
    write_json("autotune", payload)

    lines = [
        f"calibration: flop_time={cal.flop_time:.3e}s alpha={cal.alpha:.3e}s "
        f"beta={cal.beta:.3e}s/B (r2 compute={r2.get('compute', 0):.3f}, "
        f"transfer={r2.get('transfer', 0):.3f})",
        f"{'kernel':<8} {'enum':>5} {'exec':>5} {'budget':>6} "
        f"{'seed ms':>9} {'winner ms':>10} {'speedup':>8} {'mean err':>9}",
    ]
    for name, row in kernels.items():
        res = results[name]
        lines.append(
            f"{name:<8} {row['n_enumerated']:>5} {row['n_executed']:>5} "
            f"{row['budget']:>6} {res.seed.measured * 1e3:>9.3f} "
            f"{res.winner.measured * 1e3:>10.3f} "
            f"{row['speedup_vs_seed']:>7.2f}x {row['mean_error']:>8.1%}"
        )
        lines.append(f"  winner: {res.winner.label()}  "
                     f"(seed: {res.seed.label()})")
    lines.append("gates: " + ", ".join(
        f"{k}={'PASS' if v else 'FAIL'}" for k, v in gates.items()
    ))
    lines.append(f"json: {os.path.relpath(JSON_PATH)}")
    report("AUTOTUNE", "calibrated prune-then-execute layout search", lines)

    ok = all(gates.values())
    if not ok:
        failed = [k for k, v in gates.items() if not v]
        print(f"SMOKE FAIL: autotune gate(s) failed: {', '.join(failed)}",
              file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(run(smoke="--smoke" in sys.argv))
