"""MORPH -- the elastic morph drill: timing and bit-identity gate.

``repro.elastic`` claims that a session can checkpoint, lose ranks,
restore, *shrink* onto the survivors, later *re-grow* -- and that the
final results and the final-grid run trace are bit-identical to a run
that was never interrupted.  This benchmark times each leg of that
drill on the Jacobi steady-state workload and enforces the identity
claim as a hard gate (that check is the whole point of ``--smoke``,
the CI step, which runs a size where wall-clock numbers mean
nothing):

* ``checkpoint`` / ``restore``  -- host-side snapshot + re-instate;
* ``morph shrink`` / ``morph grow`` -- quiesce backends, repartition
  every live array between the grids, retarget + re-freeze the plans;
* ``second cycle``              -- the same shrink/re-grow pair again,
  which must *replay* its inter-grid repartition schedules from cache
  (zero new misses -- the compile-once/replay-forever property applied
  to elasticity; gated).

Output: ``benchmarks/results/MORPH.txt`` (human table) and
``benchmarks/results/BENCH_morph.json``.
"""

import os
import sys
import time

import numpy as np

try:
    from benchmarks._report import RESULTS_DIR, report, write_json
except ModuleNotFoundError:  # invoked as a script: python benchmarks/bench_...
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks._report import RESULTS_DIR, report, write_json

import repro
from repro import Machine, ProcessorGrid, Session

JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_morph.json")


def _trace_sig(trace):
    """Everything the morphed and uninterrupted runs must agree on."""
    return (
        [(m.src, m.dst, m.tag, m.nbytes, m.t_send, m.t_arrive, m.t_recv)
         for m in trace.messages],
        [(m.proc, m.label, m.payload) for m in trace.marks],
        [(c.proc, c.start, c.end, c.label) for c in trace.computes],
    )


def _jacobi_src(n):
    return f"""
processors procs(4)
real X(0:{n - 1}, 0:{n - 1}) dist (block, *)
real F(0:{n - 1}, 0:{n - 1}) dist (block, *)
doall (i, j) = [1, {n - 2}] * [1, {n - 2}] on owner(X(i, j))
  X(i, j) = 0.25*(X(i+1, j) + X(i-1, j) + X(i, j+1) + X(i, j-1)) - F(i, j)
end doall
"""


def _fresh(n):
    sess = Session(Machine(n_procs=4))
    prog = repro.compile(_jacobi_src(n), session=sess)
    return sess, prog


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def run(smoke=False):
    n, warm, mid, tail = (18, 2, 2, 2) if smoke else (48, 4, 4, 4)
    g4, g2 = ProcessorGrid((4,)), ProcessorGrid((2,))
    rng = np.random.default_rng(11)
    f = 1e-3 * rng.standard_normal((n, n))

    # the uninterrupted reference: same sweep totals, never morphed
    ref_sess, ref_prog = _fresh(n)
    ref_prog.run(X=np.zeros((n, n)), F=f, iters=warm)
    ref_prog.run(iters=mid)
    t_ref = ref_prog.run(iters=tail)
    want = ref_prog.arrays["X"].to_global().copy()

    # the drill: warm -> checkpoint -> restore -> shrink -> grow
    sess, prog = _fresh(n)
    prog.run(X=np.zeros((n, n)), F=f, iters=warm)
    checkpoint_s, ck = _timed(sess.checkpoint)
    nbytes = len(ck.to_bytes())
    restore_s, _ = _timed(lambda: sess.restore(ck))
    shrink_s, _ = _timed(lambda: sess.morph(g2))
    prog.run(iters=mid)
    grow_s, _ = _timed(lambda: sess.morph(g4))
    t_final = prog.run(iters=tail)
    got = prog.arrays["X"].to_global().copy()

    identical_results = bool(np.array_equal(got, want))
    identical_traces = _trace_sig(t_final) == _trace_sig(t_ref)

    # second shrink/re-grow cycle: must replay repartitions from cache
    before = dict(sess.cache.by_direction["repartition"])
    shrink2_s, _ = _timed(lambda: sess.morph(g2))
    grow2_s, _ = _timed(lambda: sess.morph(g4))
    after = sess.cache.by_direction["repartition"]
    cycle_replayed = (after["misses"] == before["misses"]
                      and after["hits"] > before["hits"])

    gates = {
        "identical_results": identical_results,
        "identical_traces": identical_traces,
        "second_cycle_replays_repartitions": cycle_replayed,
    }
    payload = {
        "experiment": "MORPH",
        "mode": "smoke" if smoke else "full",
        "n": n,
        "sweeps": {"warm": warm, "mid": mid, "tail": tail},
        "grids": {"full": [4], "shrunk": [2]},
        "checkpoint_s": checkpoint_s,
        "checkpoint_nbytes": nbytes,
        "restore_s": restore_s,
        "morph_shrink_s": shrink_s,
        "morph_grow_s": grow_s,
        "morph_shrink_replay_s": shrink2_s,
        "morph_grow_replay_s": grow2_s,
        "gates": gates,
        "notes": (
            "The drill: warm sweeps on procs(4), checkpoint + restore, "
            "morph to procs(2), sweep, morph back to procs(4), sweep.  "
            "Gated (in smoke and full modes alike): final results and the "
            "final-grid run trace bit-identical to an uninterrupted "
            "procs(4) session with the same sweep totals, and a second "
            "shrink/re-grow cycle replaying its inter-grid repartition "
            "schedules with zero new misses.  The *_replay_s times are "
            "that second, all-hit cycle."
        ),
    }
    write_json("morph", payload)

    lines = [
        f"n={n}, sweeps warm/mid/tail = {warm}/{mid}/{tail}, "
        f"grids procs(4) <-> procs(2)",
        f"{'leg':<22} {'ms':>9}",
        f"{'checkpoint':<22} {checkpoint_s * 1e3:>9.2f}   "
        f"({nbytes / 1024:.1f} KiB)",
        f"{'restore':<22} {restore_s * 1e3:>9.2f}",
        f"{'morph shrink (cold)':<22} {shrink_s * 1e3:>9.2f}",
        f"{'morph grow (cold)':<22} {grow_s * 1e3:>9.2f}",
        f"{'morph shrink (replay)':<22} {shrink2_s * 1e3:>9.2f}",
        f"{'morph grow (replay)':<22} {grow2_s * 1e3:>9.2f}",
        "gates: " + ", ".join(
            f"{k}={'PASS' if v else 'FAIL'}" for k, v in gates.items()
        ),
        f"json: {os.path.relpath(JSON_PATH)}",
    ]
    report("MORPH", "elastic morph drill: timing and bit-identity", lines)

    ok = all(gates.values())
    if not ok:
        failed = [k for k, v in gates.items() if not v]
        print(f"SMOKE FAIL: morph drill gate(s) failed: {', '.join(failed)}",
              file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(run(smoke="--smoke" in sys.argv))
