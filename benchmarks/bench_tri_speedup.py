"""L4 -- Listing 4: substructured tridiagonal solver speedup vs p.

The divide-and-conquer shape the paper's section 3 design implies:
simulated time falls as processors are added until the log-depth
communication dominates, with cyclic reduction as the classic baseline.
Absolute numbers are cost-model artifacts; the shape (speedup grows,
then saturates; substructuring beats distributed cyclic reduction at
latency-dominated settings) is what we reproduce.
"""

from benchmarks._report import dominant_system, report
from repro.kernels.cyclic_reduction import distributed_cyclic_reduction
from repro.kernels.substructured import substructured_tri_solve
from repro.machine import CostModel, Machine


def run(n=4096, ps=(1, 2, 4, 8, 16, 32)):
    cost = CostModel.hypercube_1989()
    b, a, c, f = dominant_system(n, seed=7)
    rows = []
    t1 = None
    for p in ps:
        _, trace = substructured_tri_solve(
            b, a, c, f, p, machine=Machine(n_procs=p, cost=cost)
        )
        _, tr_cr = distributed_cyclic_reduction(
            b, a, c, f, p, machine=Machine(n_procs=p, cost=cost)
        )
        t = trace.makespan()
        if p == 1:
            t1 = t
        rows.append({"p": p, "time": t, "speedup": t1 / t, "cr_time": tr_cr.makespan()})
    return rows


def test_tri_solver_speedup(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["p    substructured(s)  speedup   cyclic_reduction(s)"]
    for r in rows:
        lines.append(
            f"{r['p']:<4} {r['time']:>15.5f} {r['speedup']:>9.2f} {r['cr_time']:>18.5f}"
        )
    # shape: meaningful speedup at moderate p ...
    sp = {r["p"]: r["speedup"] for r in rows}
    assert sp[8] > 2.0
    assert sp[16] > sp[2]
    # ... and the substructured algorithm beats CR once p > 1
    for r in rows:
        if r["p"] >= 4:
            assert r["time"] < r["cr_time"]
    report("L4", "Listing 4: parallel tridiagonal solver scaling", lines)
