"""OVLP -- communication/computation overlap on a multi-sweep Jacobi run.

The executor replays frozen gather schedules, so it knows *before any
message arrives* which iteration points read only locally-owned data.
The overlap-aware mode exploits that: interior points are charged while
the ghost messages of the same sweep are still in flight (sends are
asynchronous), and only the boundary points wait for the receives.
This is the schedule-level analogue of the send/compute interleaving
pipeline systems exploit for utilization.

This benchmark runs the same multi-sweep Jacobi solve twice -- once with
the serialized executor (all ghosts received before any compute), once
overlap-aware -- and reports simulated makespan, the measured
overlap fraction, and the static estimator's predictions in both modes.
Acceptance: results bit-identical, identical wire traffic, overlapped
simulated time strictly below the serialized send+compute sum, and the
overlapped prediction at least as close to its run as the serialized
prediction is to its own.
"""

import os
import sys

import numpy as np

try:
    from benchmarks._report import report
except ModuleNotFoundError:  # invoked as a script: python benchmarks/bench_...
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks._report import report
import repro
from repro.lang import DistArray, ProcessorGrid
from repro.machine import Machine
from repro.machine.costmodel import CostModel
from repro.tensor.jacobi import build_jacobi_loop


def _run(n, p, sweeps, f, cost, overlap):
    grid = ProcessorGrid((p, p))
    X = DistArray((n, n), grid, dist=("block", "block"), name="X")
    F = DistArray((n, n), grid, dist=("block", "block"), name="F")
    F.from_global(f)
    loop = build_jacobi_loop(X, F, n - 1, grid)
    # two-phase API: compile freezes the schedules, run replays them
    program = repro.compile(loop, machine=Machine(n_procs=p * p, cost=cost))
    trace = program.run(iters=sweeps, overlap=overlap)
    return X.to_global(), trace, program


def run(n=49, p=2, sweeps=8):
    cost = CostModel.hypercube_1989()
    rng = np.random.default_rng(23)
    f = 1e-3 * rng.standard_normal((n, n))

    x_ser, t_ser, prog_s = _run(n, p, sweeps, f, cost, overlap=False)
    x_ovl, t_ovl, prog_o = _run(n, p, sweeps, f, cost, overlap=True)

    est = prog_o.loop_estimates()[0]
    pred_ser = est.predicted_time(cost)
    pred_ovl = est.predicted_time(cost, overlap=True)
    sim_ser = t_ser.makespan() / sweeps
    sim_ovl = t_ovl.makespan() / sweeps

    return {
        "n": n,
        "p": p,
        "sweeps": sweeps,
        "identical": bool(np.array_equal(x_ser, x_ovl)),
        "msgs_ser": t_ser.message_count(),
        "msgs_ovl": t_ovl.message_count(),
        "bytes_ser": t_ser.total_bytes(),
        "bytes_ovl": t_ovl.total_bytes(),
        "time_ser": t_ser.makespan(),
        "time_ovl": t_ovl.makespan(),
        "speedup": t_ser.makespan() / t_ovl.makespan(),
        "frac_ser": t_ser.overlap_fraction(),
        "frac_ovl": t_ovl.overlap_fraction(),
        "pred_ser": pred_ser,
        "pred_ovl": pred_ovl,
        "sim_ser": sim_ser,
        "sim_ovl": sim_ovl,
        "err_ser": abs(pred_ser - sim_ser) / sim_ser,
        "err_ovl": abs(pred_ovl - sim_ovl) / sim_ovl,
    }


def test_overlap(benchmark):
    r = benchmark.pedantic(run, rounds=1, iterations=1)
    _check_and_report(r)


def _check_and_report(r):
    assert r["identical"], "overlap mode changed the computed values"
    assert r["msgs_ovl"] == r["msgs_ser"] and r["bytes_ovl"] == r["bytes_ser"], (
        "overlap mode changed the wire traffic"
    )
    assert r["time_ovl"] < r["time_ser"], (
        f"expected overlapped sim time below the serialized sum, got "
        f"{r['time_ovl']:.6g} >= {r['time_ser']:.6g}"
    )
    assert r["frac_ovl"] > r["frac_ser"]
    # the overlapped prediction must track its run at least as exactly
    # as the serialized prediction tracks the serialized run
    assert r["err_ovl"] <= r["err_ser"] + 1e-9
    report(
        "OVLP",
        "comm/compute overlap: split interior/boundary compute vs serialized",
        [
            f"p={r['p']}x{r['p']}, n={r['n']}, sweeps={r['sweeps']}",
            f"wire traffic identical: {r['msgs_ser']} msgs / "
            f"{r['bytes_ser']} bytes in both modes",
            f"sim time: serialized {r['time_ser']:.6g}s, "
            f"overlapped {r['time_ovl']:.6g}s  ({r['speedup']:.2f}x faster)",
            f"overlap fraction: serialized {r['frac_ser']:.3f}, "
            f"overlapped {r['frac_ovl']:.3f}",
            f"estimator (per sweep): serialized pred {r['pred_ser']:.6g}s "
            f"vs sim {r['sim_ser']:.6g}s (err {r['err_ser']:.1%}); "
            f"overlapped pred {r['pred_ovl']:.6g}s vs sim {r['sim_ovl']:.6g}s "
            f"(err {r['err_ovl']:.1%})",
            f"results bit-identical: {r['identical']}",
        ],
    )


if __name__ == "__main__":
    _check_and_report(run())
