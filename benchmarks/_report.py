"""Shared reporting helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures or claims; the
rows it produces are printed and also written under
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can reference
stable artifacts.  Machine-readable results go through
:func:`write_json`, which pins the shared ``BENCH_*.json`` envelope so
the files stop drifting in shape between benchmarks.
"""

from __future__ import annotations

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Version of the shared BENCH_*.json envelope written by
#: :func:`write_json`.  Every payload carries it as ``schema_version``.
#: The envelope contract (bump this when it changes incompatibly):
#:
#: * ``schema_version`` (int)  -- this constant;
#: * ``experiment`` (str)      -- the benchmark's experiment tag;
#: * ``mode`` (str)            -- ``"smoke"`` or ``"full"``;
#: * ``host`` (dict)           -- ``cpus``/``platform``/``python``;
#: * ``gates`` (dict)          -- gate name -> bool (CI pass/fail);
#: * ``notes`` (str)           -- how to read the numbers;
#:
#: plus benchmark-specific measurement fields alongside.
BENCH_SCHEMA_VERSION = 1


def host_info() -> dict:
    """The ``host`` block of the shared BENCH_*.json envelope."""
    import platform

    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        cpus = os.cpu_count() or 1
    return {
        "cpus": cpus,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def write_json(name: str, payload: dict) -> str:
    """Write ``benchmarks/results/BENCH_<name>.json`` (shared envelope).

    Stamps ``schema_version`` (:data:`BENCH_SCHEMA_VERSION`) and fills
    in ``host`` when the payload lacks one, so every benchmark's JSON
    carries the same envelope; the payload's own fields are otherwise
    written as given.  Returns the path.
    """
    payload = dict(payload)
    payload.setdefault("schema_version", BENCH_SCHEMA_VERSION)
    payload.setdefault("host", host_info())
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path


def report(experiment: str, title: str, lines: list[str]) -> str:
    """Print and persist one experiment's regenerated rows."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join([f"# {experiment}: {title}"] + lines) + "\n"
    path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w") as fh:
        fh.write(text)
    print("\n" + text)
    return path


def dominant_system(n: int, seed: int = 0):
    """Random diagonally dominant tridiagonal system (shared workload)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    b = rng.uniform(-1, 1, n)
    c = rng.uniform(-1, 1, n)
    a = np.abs(b) + np.abs(c) + rng.uniform(1.0, 2.0, n)
    f = rng.uniform(-5, 5, n)
    return b, a, c, f


def dominant_systems(m: int, n: int, seed: int = 0):
    import numpy as np

    rng = np.random.default_rng(seed)
    B = rng.uniform(-1, 1, (m, n))
    C = rng.uniform(-1, 1, (m, n))
    A = np.abs(B) + np.abs(C) + rng.uniform(1.0, 2.0, (m, n))
    F = rng.uniform(-5, 5, (m, n))
    return B, A, C, F
