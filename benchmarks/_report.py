"""Shared reporting helper for the benchmark harness.

Every benchmark regenerates one of the paper's figures or claims; the
rows it produces are printed and also written under
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can reference
stable artifacts.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(experiment: str, title: str, lines: list[str]) -> str:
    """Print and persist one experiment's regenerated rows."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join([f"# {experiment}: {title}"] + lines) + "\n"
    path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w") as fh:
        fh.write(text)
    print("\n" + text)
    return path


def dominant_system(n: int, seed: int = 0):
    """Random diagonally dominant tridiagonal system (shared workload)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    b = rng.uniform(-1, 1, n)
    c = rng.uniform(-1, 1, n)
    a = np.abs(b) + np.abs(c) + rng.uniform(1.0, 2.0, n)
    f = rng.uniform(-5, 5, n)
    return b, a, c, f


def dominant_systems(m: int, n: int, seed: int = 0):
    import numpy as np

    rng = np.random.default_rng(seed)
    B = rng.uniform(-1, 1, (m, n))
    C = rng.uniform(-1, 1, (m, n))
    A = np.abs(B) + np.abs(C) + rng.uniform(1.0, 2.0, (m, n))
    F = rng.uniform(-5, 5, (m, n))
    return B, A, C, F
