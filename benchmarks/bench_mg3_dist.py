"""L911 -- Listings 9-11: 3-D multigrid distribution ablation (section 5).

Three alternatives the paper names: plane solves parallel over a grid
column, plane solves sequential per processor, and the full 3-D
processor array where "the tridiagonal solves in mg2 would have been
parallel".

"We could have done things differently by changing the dimensionality
of the original processor array... The best alternative here depends on
the problem size, the number of processors, the cost of communication."
We run the same mg3 under ``(*, block, block)`` (plane solves parallel
over a processor-grid column) and ``(*, *, block)`` (plane solves local,
communication only across planes), verify identical numerics, and
report the communication tradeoff.
"""

import numpy as np

from benchmarks._report import report
from repro.compiler import clear_plan_cache
from repro.lang import ProcessorGrid
from repro.machine import CostModel, Machine
from repro.tensor.multigrid3d import mg3_reference, mg3_solve
from repro.tensor.poisson import manufactured_3d


def run(n=8, cycles=1, p=4):
    _, f = manufactured_3d(n)
    ref = mg3_reference(f, cycles=cycles)
    cost = CostModel.hypercube_1989()
    rows = []
    for dist, shape in [
        (("*", "block", "block"), (2, 2)),
        (("*", "*", "block"), (4,)),
        (("block", "block", "block"), (2, 2, 1)),
    ]:
        clear_plan_cache()
        machine = Machine(n_procs=p, cost=cost)
        u, trace = mg3_solve(machine, ProcessorGrid(shape), f, cycles=cycles, dist=dist)
        rows.append(
            {
                "dist": str(dist),
                "err": float(np.max(np.abs(u - ref))),
                "time": trace.makespan(),
                "msgs": trace.message_count(),
                "bytes": trace.total_bytes(),
                "util": trace.utilization(),
            }
        )
    return rows


def test_mg3_distribution_ablation(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["distribution               time(s)    msgs     bytes     util    err"]
    for r in rows:
        lines.append(
            f"{r['dist']:<26} {r['time']:>8.5f} {r['msgs']:>7} {r['bytes']:>9}"
            f" {r['util']:>8.2%}  {r['err']:.1e}"
        )
        assert r["err"] < 1e-11  # same numerics under every distribution
    # the distributions genuinely differ in communication structure
    assert rows[0]["bytes"] != rows[1]["bytes"]
    report(
        "L911",
        "Listings 9-11: mg3 under alternate distributions (section 5)",
        lines,
    )
