"""SCHED -- communication-schedule reuse across irregular-gather sweeps.

The paper leans on the runtime inspector/executor scheme (its reference
[17], the Crowley/Saltz PARTI lineage) for irregular references.  The
point of that scheme is amortization: when the index pattern is
loop-invariant across sweeps, the two-round inspection only ever needs
to run once, after which a cached schedule replays with one round of
coalesced value messages.

This benchmark runs the same multi-sweep irregular gather twice -- once
calling the uncached ``inspector_gather`` every sweep, once through the
schedule cache -- and reports message counts, bytes, and simulated
makespan.  Array values change between sweeps (fenced by barriers), so
the replay genuinely re-reads current data; the gathered results must be
bit-identical between the two runs.  Acceptance: the cached run moves at
least 2x fewer messages and finishes in less simulated time.
"""

import os
import sys

import numpy as np

try:
    from benchmarks._report import report
except ModuleNotFoundError:  # invoked as a script: python benchmarks/bench_...
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from benchmarks._report import report
from repro.compiler import inspector_gather
from repro.lang import DistArray, ProcessorGrid
from repro.session import Session
from repro.machine import Barrier, Machine
from repro.machine.costmodel import CostModel


def _index_patterns(p, n, per_rank, seed=11):
    """Fixed irregular, loop-invariant request sets: each rank draws its
    indices from the blocks of two neighbor ranks plus its own."""
    rng = np.random.default_rng(seed)
    block = n // p
    idx = {}
    for r in range(p):
        partners = [r, (r + 1) % p, (r + 3) % p]
        pool = np.concatenate(
            [np.arange(q * block, (q + 1) * block) for q in partners]
        )
        idx[r] = rng.choice(pool, size=per_rank, replace=True).reshape(-1, 1)
    return idx


def _run(p, n, sweeps, idx, cached):
    machine = Machine(n_procs=p, cost=CostModel.hypercube_1989())
    grid = ProcessorGrid((p,))
    A = DistArray((n,), grid, dist=("block",), name="A")
    A.from_global(np.sin(np.arange(n) * 0.1))
    session = Session(machine, grid)
    group = tuple(grid.linear)
    results = {r: [] for r in range(p)}

    def prog(ctx):
        me = ctx.rank
        for sweep in range(sweeps):
            if cached:
                vals = yield from ctx.cached_gather(grid, A, idx[me])
            else:
                vals = yield from inspector_gather(ctx, grid, A, idx[me])
            results[me].append(vals)
            # deterministic update of my block, fenced so that both
            # variants observe identical pre-sweep values
            yield Barrier(group=group, tag=("pre-mutate", sweep))
            A.local(me)[...] += 0.25 * (me + 1)
            yield Barrier(group=group, tag=("post-mutate", sweep))

    trace = session.run(prog)
    return results, trace, session.cache


def run(p=8, n=256, sweeps=6, per_rank=32):
    idx = _index_patterns(p, n, per_rank)
    res_un, t_un, _ = _run(p, n, sweeps, idx, cached=False)
    res_ca, t_ca, cache = _run(p, n, sweeps, idx, cached=True)

    identical = all(
        np.array_equal(res_un[r][s], res_ca[r][s])
        for r in range(p)
        for s in range(sweeps)
    )
    return {
        "p": p,
        "n": n,
        "sweeps": sweeps,
        "identical": identical,
        "msgs_uncached": t_un.message_count(),
        "msgs_cached": t_ca.message_count(),
        "msg_ratio": t_un.message_count() / t_ca.message_count(),
        "bytes_uncached": t_un.total_bytes(),
        "bytes_cached": t_ca.total_bytes(),
        "time_uncached": t_un.makespan(),
        "time_cached": t_ca.makespan(),
        "hit_rate": t_ca.schedule_hit_rate(),
        "hit_rate_gather": t_ca.schedule_hit_rate("gather"),
        "directions": t_ca.schedule_directions(),
        "cache": cache.stats(),
    }


def test_schedule_reuse(benchmark):
    r = benchmark.pedantic(run, rounds=1, iterations=1)
    _check_and_report(r)


def _check_and_report(r):
    assert r["identical"], "cached replay changed gathered values"
    assert r["msg_ratio"] >= 2.0, (
        f"expected >= 2x fewer messages with schedule reuse, got "
        f"{r['msg_ratio']:.2f}x"
    )
    assert r["time_cached"] < r["time_uncached"]
    # reuse must be visible per direction from the second sweep on
    assert r["hit_rate_gather"] > 0.0
    report(
        "SCHED",
        "communication-schedule reuse on a loop-invariant irregular gather",
        [
            f"p={r['p']}, n={r['n']}, sweeps={r['sweeps']}",
            f"messages: uncached {r['msgs_uncached']}, "
            f"cached {r['msgs_cached']}  ({r['msg_ratio']:.2f}x fewer)",
            f"bytes:    uncached {r['bytes_uncached']}, cached {r['bytes_cached']}",
            f"sim time: uncached {r['time_uncached']:.6g}s, "
            f"cached {r['time_cached']:.6g}s "
            f"({r['time_uncached'] / r['time_cached']:.2f}x faster)",
            f"schedule hit rate {r['hit_rate']:.3f} "
            f"(gather {r['hit_rate_gather']:.3f}), cache {r['cache']}",
            f"per-direction events: {r['directions']}",
            f"results bit-identical: {r['identical']}",
        ],
    )


if __name__ == "__main__":
    _check_and_report(run())
