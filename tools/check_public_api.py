#!/usr/bin/env python
"""Assert the public API surface matches the documentation (docs CI job).

``repro.__all__`` is the contract: ``docs/api.md`` ends with a "Public
surface" section listing every exported name in backticks.  This tool
fails when the two drift — an accidental export, a forgotten doc entry,
or an ``__all__`` name that does not actually resolve on the package.

Usage: PYTHONPATH=src python tools/check_public_api.py
"""

from __future__ import annotations

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
API_DOC = os.path.join(REPO_ROOT, "docs", "api.md")

_SECTION = "## Public surface"
#: A documented name: a backticked identifier (dunders included).
_NAME = re.compile(r"`([A-Za-z_][A-Za-z0-9_]*)`")

#: Names whose removal would be a breaking change even if the docs were
#: edited in the same commit -- the drift check alone can't catch a
#: coordinated deletion, so these are pinned here.
REQUIRED = {
    "Session", "Program", "compile",
    "SessionPool", "Server", "run_batch", "BatchResult",
    "Checkpoint", "checkpoint", "restore", "morph",
    "Supervisor", "SupervisorPolicy", "RecoveryLog", "faults",
    "ServerOverloadError",
    "tune", "TuneResult", "CalibratedCostModel", "calibrate",
}


def documented_names(path: str = API_DOC) -> set[str]:
    """Names listed in the docs' "Public surface" section."""
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    if _SECTION not in text:
        raise SystemExit(f"error: {path} has no {_SECTION!r} section")
    section = text.split(_SECTION, 1)[1]
    # the section runs to the next heading (or EOF); prose code spans
    # with paths or dots never match the identifier pattern
    section = re.split(r"\n## ", section, maxsplit=1)[0]
    return {m.group(1) for m in _NAME.finditer(section)}


def check(doc_path: str = API_DOC) -> list[str]:
    """Return a list of problems (empty = surface matches the docs)."""
    import repro

    problems: list[str] = []
    exported = set(repro.__all__)
    if len(repro.__all__) != len(exported):
        problems.append("repro.__all__ contains duplicates")
    documented = documented_names(doc_path)

    for name in sorted(exported - documented):
        problems.append(f"exported but not documented in docs/api.md: {name}")
    for name in sorted(documented - exported):
        problems.append(f"documented in docs/api.md but not exported: {name}")
    for name in sorted(exported):
        if not hasattr(repro, name):
            problems.append(f"in repro.__all__ but not an attribute: {name}")
    for name in sorted(REQUIRED - exported):
        problems.append(f"required public name missing from repro.__all__: {name}")
    return problems


def main() -> int:
    problems = check()
    for p in problems:
        print(f"error: {p}", file=sys.stderr)
    if not problems:
        print(f"public API surface ok ({len(documented_names())} names)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
