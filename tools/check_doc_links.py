#!/usr/bin/env python
"""Fail on broken intra-repo markdown links (the docs CI job).

Scans ``[text](target)`` links in the given markdown files.  External
targets (``http(s)://``, ``mailto:``) and pure in-page anchors
(``#...``) are skipped; every other target must resolve, relative to
the linking file, to an existing file or directory in the repo.

Usage: python tools/check_doc_links.py docs/*.md README.md
"""

from __future__ import annotations

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Inline code spans may contain bracket-paren sequences that are not
#: links; strip fenced/inline code before scanning.  Inline spans must
#: not cross lines, or one stray backtick would pair with the next
#: backtick pages later and silently swallow genuine links.
CODE_RE = re.compile(r"```.*?```|`[^`\n]*`", re.DOTALL)


def broken_links(path: str) -> list[tuple[str, str]]:
    with open(path, encoding="utf-8") as fh:
        text = CODE_RE.sub("", fh.read())
    out = []
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            continue
        rel = target.split("#", 1)[0]
        resolved = os.path.normpath(os.path.join(os.path.dirname(path), rel))
        if not os.path.exists(resolved):
            out.append((target, resolved))
    return out


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_doc_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    bad = 0
    for path in argv:
        broken = broken_links(path)
        for target, resolved in broken:
            print(f"{path}: broken link {target!r} -> {resolved}", file=sys.stderr)
        bad += len(broken)
        print(f"{path}: {'BROKEN' if broken else 'ok'}")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
