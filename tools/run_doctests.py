#!/usr/bin/env python
"""Run the public-API doctests (the docs CI job).

``python -m doctest src/repro/lang/context.py`` would import the file
with its *directory* prepended to ``sys.path``, where ``lang/array.py``
shadows the stdlib ``array`` module and breaks unrelated imports.  This
runner imports each module through the package instead (requires
``PYTHONPATH=src``) and applies :func:`doctest.testmod` -- the same
checker, minus the path hazard.

Usage: PYTHONPATH=src python tools/run_doctests.py [module ...]
"""

from __future__ import annotations

import doctest
import importlib
import sys

#: Modules whose docstrings carry runnable ``>>>`` examples.
DEFAULT_MODULES = [
    "repro.compiler.commsched",
    "repro.compiler.estimate",
    "repro.compiler.schedule",
    "repro.faults",
    "repro.lang.context",
    "repro.lang.expr",
    "repro.machine.costmodel",
    "repro.machine.trace",
    "repro.serve",
    "repro.session",
    "repro.supervise",
]


def main(argv: list[str]) -> int:
    modules = argv or DEFAULT_MODULES
    failed = attempted = 0
    for name in modules:
        mod = importlib.import_module(name)
        result = doctest.testmod(mod, verbose=False)
        print(f"{name}: {result.attempted} examples, {result.failed} failures")
        failed += result.failed
        attempted += result.attempted
    if attempted == 0:
        print("error: no doctest examples found", file=sys.stderr)
        return 1
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
